// Package pipeline provides multi-core ingestion for the sketch: a sharded
// pool of workers, each owning a private basic Distinct-Count Sketch, with
// flow updates routed by pair hash so every (src,dst) pair's inserts and
// deletes land on the same worker in order. Because sketches with one seed
// merge exactly, a query drains the shards, combines them into one counter
// array and rebuilds the tracking state once — the single-node analogue of
// the paper's multi-monitor collector (Fig. 1), used when one core cannot
// keep up with the link rate. (Shards deliberately do not maintain the §5
// tracking structures per update: every fold rebuilds them from the merged
// counters anyway, so per-shard incremental tracking would be pure overhead
// on the ingest path.)
//
// Two ingestion paths exist. Update/UpdateKey submit one update per shard
// channel send — simple, and any number of producer goroutines may call
// them. Batcher is the fast path: each producer stages updates in private
// per-shard buffers and pays one channel hop per ~DefaultBatchSize updates
// instead of one per packet; see NewBatcher for its ordering and visibility
// contract.
//
// Concurrency contract: Update/UpdateKey may be called from any number of
// producer goroutines (they block for backpressure when a shard queue is
// full). TopK and Threshold may run concurrently with producers; each
// returns a consistent-per-shard snapshot (shards are folded in sequence, so
// the combined view is not a single atomic cut of the stream — the usual and
// acceptable semantics for monitoring). Close stops the workers and waits
// for them to exit; no update may be submitted after Close.
package pipeline

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/tracelog"
)

// DefaultQueueDepth is the per-shard update queue length, counted in channel
// messages (a scalar update or a whole staged batch each occupy one slot).
// Deeper queues smooth bursts at the cost of latency for the fold in TopK.
const DefaultQueueDepth = 1024

// DefaultBatchSize is the number of updates a Batcher stages per shard
// before paying the channel hop to the worker.
const DefaultBatchSize = 256

// envelope is one shard-queue message: either a single scalar update (batch
// nil) or a pool-owned staged batch. session/seq carry the originating wire
// batch's provenance key for the flight recorder; both are 0 for scalar
// updates and for staged buffers shipped outside FlushTraced.
type envelope struct {
	one     dcs.KeyDelta
	batch   *[]dcs.KeyDelta
	session uint64
	seq     uint64
}

// batchPool recycles staging buffers between producers and workers so the
// batched ingest path allocates only while a buffer is in flight for the
// first time.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]dcs.KeyDelta, 0, DefaultBatchSize)
		return &b
	},
}

// foldRequest asks a worker to merge its sketch into acc at a quiescent
// point of its own loop.
type foldRequest struct {
	acc  *dcs.Sketch
	done chan error
}

// worker owns one shard. The sketch is private to the loop goroutine (the
// documented single-writer discipline); stats are the only cross-goroutine
// worker state and live behind statMu so Stats can read them live.
type worker struct {
	updates chan envelope
	folds   chan foldRequest
	sketch  *dcs.Sketch
	done    chan struct{}

	// tel points at the pipeline's telemetry bundle slot. Loaded per
	// applied envelope (nil until RegisterTelemetry): workers start before
	// telemetry can be attached, so the indirection is what lets a running
	// pipeline be instrumented without a lock on the ingest path.
	tel *atomic.Pointer[telemetry.PipelineMetrics]

	// ring is this shard's flight-recorder ring, attached (once, via
	// AttachTracer) after the worker is already running — hence the same
	// atomic-pointer indirection as tel. Only the loop goroutine Records
	// into it, honoring the ring's single-writer contract.
	ring atomic.Pointer[tracelog.Ring]

	statMu sync.Mutex
	// applied counts updates absorbed into the shard sketch, published at
	// each quiescent point (fold or exit). guarded by statMu
	applied uint64
	// served counts fold requests this worker answered. guarded by statMu
	served uint64
}

// apply absorbs one queue message into the shard sketch and returns the
// number of updates it carried. Batch buffers are returned to the pool.
func (w *worker) apply(e envelope) uint64 {
	n := uint64(1)
	if e.batch == nil {
		w.sketch.UpdateKey(e.one.Key, e.one.Delta)
	} else {
		n = uint64(len(*e.batch))
		w.sketch.UpdateBatch(*e.batch)
		*e.batch = (*e.batch)[:0]
		batchPool.Put(e.batch)
	}
	if tel := w.tel.Load(); tel != nil {
		tel.AppliedTotal.Add(n)
		tel.BatchSize.Observe(n)
	}
	if ring := w.ring.Load(); ring != nil && e.session != 0 {
		ring.Record(tracelog.StageShardApply, e.session, e.seq, uint32(n), 0)
	}
	return n
}

func (w *worker) loop() {
	defer close(w.done)
	applied := uint64(0)
	publish := func(foldServed bool) {
		w.statMu.Lock()
		w.applied = applied
		if foldServed {
			w.served++
		}
		w.statMu.Unlock()
	}
	defer publish(false)
	for {
		select {
		case e, ok := <-w.updates:
			if !ok {
				// Queue closed and fully drained: exit. Fold
				// requests racing with shutdown are redirected
				// by the coordinator once done closes.
				return
			}
			applied += w.apply(e)
		case req := <-w.folds:
			// Prefer pending updates: drain the queue before
			// folding so queries observe everything submitted
			// before them (per shard).
			drained := false
			for !drained {
				select {
				case e, ok := <-w.updates:
					if !ok {
						drained = true
						break
					}
					applied += w.apply(e)
				default:
					drained = true
				}
			}
			publish(true)
			req.done <- req.acc.Merge(w.sketch) //lint:seedok fold builds acc from p.cfg, the same config every shard sketch is built from
		}
	}
}

// Pipeline is the sharded ingestion pool.
type Pipeline struct {
	cfg     dcs.Config
	shards  []*worker
	router  *hashing.Tab64
	n       atomic.Uint64
	closing sync.Once

	// shed flips the batched ship path from blocking backpressure to
	// drop-newest load shedding (see EnableShedding). Set before heavy
	// traffic; never cleared.
	shed atomic.Bool
	// shedBatches and shedUpdates count the whole staged batches, and the
	// updates inside them, dropped by shedding.
	shedBatches atomic.Uint64
	shedUpdates atomic.Uint64

	// tel holds the telemetry bundle once RegisterTelemetry attaches one;
	// nil (and free of cost beyond one atomic load per envelope/fold)
	// until then.
	tel atomic.Pointer[telemetry.PipelineMetrics]
}

// New builds a pipeline with the given number of shard workers (>= 1).
// queueDepth <= 0 selects DefaultQueueDepth.
func New(cfg dcs.Config, workers, queueDepth int) (*Pipeline, error) {
	if workers < 1 {
		return nil, fmt.Errorf("pipeline: workers = %d, must be >= 1", workers)
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	// Validate the config once and reuse the defaulted form so all
	// shards (and query accumulators) share one seed and are mergeable.
	probe, err := dcs.New(cfg)
	if err != nil {
		return nil, err
	}
	cfg = probe.Config()

	p := &Pipeline{
		cfg:    cfg,
		shards: make([]*worker, workers),
		router: hashing.NewTab64(cfg.Seed ^ 0x9e3779b97f4a7c15),
	}
	for i := range p.shards {
		var sk *dcs.Sketch
		if i == 0 {
			sk = probe // reuse the validation sketch
		} else {
			sk, err = dcs.New(cfg)
			if err != nil {
				return nil, err
			}
		}
		w := &worker{
			updates: make(chan envelope, queueDepth),
			folds:   make(chan foldRequest),
			sketch:  sk,
			done:    make(chan struct{}),
			tel:     &p.tel,
		}
		p.shards[i] = w
		go w.loop()
	}
	return p, nil
}

// Update routes one flow update to its shard, blocking when the shard's
// queue is full (backpressure). Calling Update after Close panics, as does
// sending on any closed channel; the contract forbids it.
func (p *Pipeline) Update(src, dst uint32, delta int64) {
	p.UpdateKey(hashing.PairKey(src, dst), delta)
}

// UpdateKey is Update on a packed pair key.
func (p *Pipeline) UpdateKey(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	shard := p.router.Bucket(key, len(p.shards))
	p.shards[shard].updates <- envelope{one: dcs.KeyDelta{Key: key, Delta: delta}}
	p.n.Add(1)
}

// Batcher is the batched ingestion fast path: it stages updates in private
// per-shard buffers and ships each buffer to its shard worker as one channel
// message when it fills (DefaultBatchSize updates) or on Flush.
//
// Ordering: all updates staged through one Batcher are applied in staging
// order per pair (the router sends a pair to exactly one shard, and buffers
// are shipped and applied in order). Updates submitted through different
// Batchers, or interleaved with scalar Update calls for the same pair, have
// no order guarantee relative to each other beyond the shard queue's FIFO —
// give each producer goroutine its own Batcher and one submission path per
// pair, the same per-producer discipline the scalar path already requires.
//
// Visibility: staged updates are invisible to TopK/Threshold until shipped.
// Call Flush before querying (or rely on a full buffer shipping itself). The
// fold still drains every shard queue, so everything shipped before a query
// is observed by it.
//
// A Batcher is not safe for concurrent use; create one per producer
// goroutine. It must be Flushed before Pipeline.Close.
type Batcher struct {
	p    *Pipeline
	size int
	// bufs holds the per-shard staging buffers, owned by this Batcher from
	// pool Get until the buffer ships (or Flush returns it).
	bufs []*[]dcs.KeyDelta //lint:scratch
}

// NewBatcher returns an empty Batcher for this pipeline.
func (p *Pipeline) NewBatcher() *Batcher {
	return &Batcher{
		p:    p,
		size: DefaultBatchSize,
		bufs: make([]*[]dcs.KeyDelta, len(p.shards)),
	}
}

// Update stages one flow update.
func (b *Batcher) Update(src, dst uint32, delta int64) {
	b.UpdateKey(hashing.PairKey(src, dst), delta)
}

// UpdateKey is Update on a packed pair key. It blocks only when a filled
// shard buffer must be shipped and that shard's queue is full.
//
//lint:allocfree
//lint:poolown staged buffer is owned by b.bufs until shipped to a worker or returned by Flush
func (b *Batcher) UpdateKey(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	shard := b.p.router.Bucket(key, len(b.p.shards))
	buf := b.bufs[shard]
	if buf == nil {
		buf = batchPool.Get().(*[]dcs.KeyDelta) //lint:allocok pool refill allocates only while the pool is cold
		b.bufs[shard] = buf
	}
	*buf = append(*buf, dcs.KeyDelta{Key: key, Delta: delta}) //lint:allocok staging buffers carry DefaultBatchSize capacity from the pool
	if len(*buf) >= b.size {
		b.bufs[shard] = nil
		if !b.p.ship(shard, buf, 0, 0) {
			// Shed: the worker never received the buffer, so this Batcher
			// still owns it — truncate and keep it staged for the next
			// updates instead of a pool round trip.
			*buf = (*buf)[:0]
			b.bufs[shard] = buf
		}
	}
}

// Flush ships every non-empty staged buffer to its shard. It must be called
// before the producer queries (to make staged updates visible) and before
// Pipeline.Close (staged updates would otherwise be lost).
func (b *Batcher) Flush() {
	b.FlushTraced(nil, 0, 0)
}

// FlushTraced is Flush carrying batch provenance for the flight recorder:
// each shipped buffer's envelope is stamped with (session, seq) so the shard
// worker can record its StageShardApply, and each ship is recorded as a
// StageShardStage event in ring (the producer's own ring — FlushTraced runs
// on the producer goroutine, honoring the ring's single-writer contract)
// with the shard index in Aux. A nil ring or zero session just ships.
//
// Buffers that filled up and auto-shipped from UpdateKey between flushes
// travel untagged (session 0): the hot staging path stays free of provenance
// bookkeeping, and a full buffer generally spans wire batches anyway.
func (b *Batcher) FlushTraced(ring *tracelog.Ring, session, seq uint64) {
	for shard, buf := range b.bufs {
		if buf == nil {
			continue
		}
		b.bufs[shard] = nil
		if len(*buf) == 0 {
			batchPool.Put(buf) //lint:poolok buffer is empty by construction (nothing was staged since Get or the last ship)
			continue
		}
		n := uint32(len(*buf))
		if ring != nil && session != 0 {
			ring.Record(tracelog.StageShardStage, session, seq, n, uint64(shard))
		}
		if !b.p.ship(shard, buf, session, seq) {
			*buf = (*buf)[:0]
			batchPool.Put(buf) //lint:poolok shed path: the worker never received the buffer, so the flusher recycles it
			if ring != nil && session != 0 {
				// The stage event above still stands — the batch was
				// staged, then shed; the pair reads in order in the trace
				// and keeps StageShardStage strictly before StageShardApply
				// in GSeq for batches that do land.
				ring.Record(tracelog.StageShardShed, session, seq, n, uint64(shard))
			}
		}
	}
}

// ship hands a staged buffer to a shard worker and reports whether the
// worker accepted it. On true, ownership transfers on the send: the worker
// may recycle the buffer into the pool (and a third goroutine may start
// filling it) the moment it receives — hence the length is read before.
// On false the caller retains ownership and must truncate before reuse.
//
// With shedding enabled (EnableShedding), a full shard queue sheds the
// whole batch instead of blocking: the shed counters advance and ship
// reports false. Dropping at whole-batch granularity keeps the sketch
// linear in what was applied — a batch is either fully in or fully out,
// never torn.
func (p *Pipeline) ship(shard int, buf *[]dcs.KeyDelta, session, seq uint64) bool {
	n := uint64(len(*buf))
	if p.shed.Load() {
		select {
		case p.shards[shard].updates <- envelope{batch: buf, session: session, seq: seq}:
		default:
			p.shedBatches.Add(1)
			p.shedUpdates.Add(n)
			return false
		}
		p.n.Add(n)
		return true
	}
	p.shards[shard].updates <- envelope{batch: buf, session: session, seq: seq}
	p.n.Add(n)
	return true
}

// EnableShedding switches the batched ship path from blocking backpressure
// to deterministic drop-newest load shedding: when a shard queue is full, a
// staged batch is dropped whole (counted in Shed and the dcsketch_shed_*
// series, and recorded as a StageShardShed flight-recorder event on traced
// flushes) instead of stalling — or, at the extreme, OOMing — the producer.
// The scalar Update/UpdateKey path always blocks: shedding is a whole-batch
// policy, matching the wire protocol's batch granularity. Call before heavy
// traffic; shedding cannot be disabled again.
func (p *Pipeline) EnableShedding() { p.shed.Store(true) }

// Shed reports the whole batches and the updates inside them dropped by
// load shedding so far. Both are zero unless EnableShedding was called.
func (p *Pipeline) Shed() (batches, updates uint64) {
	return p.shedBatches.Load(), p.shedUpdates.Load()
}

// fold merges every shard's counters into a fresh accumulator and promotes
// it to a tracking sketch with a single Rebuild.
func (p *Pipeline) fold() (*tdcs.Sketch, error) {
	tel := p.tel.Load()
	var start time.Time
	if tel != nil {
		start = time.Now()
	}
	acc, err := dcs.New(p.cfg)
	if err != nil {
		return nil, err
	}
	if err := p.foldInto(acc); err != nil {
		return nil, err
	}
	snap := tdcs.FromBase(acc)
	if tel != nil {
		tel.FoldsTotal.Inc()
		tel.ServedTotal.Inc()
		tel.FoldLatency.Observe(uint64(time.Since(start)))
	}
	return snap, nil
}

// FoldBase merges every shard's counters into a fresh basic sketch and
// returns it without promoting it to a tracking sketch. Callers that need to
// combine the pipeline's view with other counter sources (e.g. the server
// folding in its monitor's sketch) merge into the returned accumulator and
// pay the single tdcs.FromBase rebuild themselves. The caller owns the
// returned sketch.
func (p *Pipeline) FoldBase() (*dcs.Sketch, error) {
	acc, err := dcs.New(p.cfg)
	if err != nil {
		return nil, err
	}
	if err := p.foldInto(acc); err != nil {
		return nil, err
	}
	return acc, nil
}

// foldInto merges every shard's counters into acc at per-shard quiescent
// points, draining each shard's queue first.
func (p *Pipeline) foldInto(acc *dcs.Sketch) error {
	for i, w := range p.shards {
		req := foldRequest{acc: acc, done: make(chan error, 1)}
		select {
		case w.folds <- req:
			if err := <-req.done; err != nil {
				return fmt.Errorf("pipeline: fold shard %d: %w", i, err)
			}
		case <-w.done:
			// Worker already stopped (Close): its sketch is
			// quiescent, merge directly.
			if err := acc.Merge(w.sketch); err != nil { //lint:seedok acc is built from p.cfg, the same config every shard sketch is built from
				return fmt.Errorf("pipeline: fold stopped shard %d: %w", i, err)
			}
		}
	}
	return nil
}

// TopK folds the shards and returns the combined top-k destinations.
func (p *Pipeline) TopK(k int) ([]dcs.Estimate, error) {
	acc, err := p.fold()
	if err != nil {
		return nil, err
	}
	return acc.TopK(k), nil
}

// Threshold folds the shards and returns all destinations with estimated
// frequency >= tau, in descending frequency order (ties by ascending
// address) — the order tdcs.Threshold already guarantees.
func (p *Pipeline) Threshold(tau int64) ([]dcs.Estimate, error) {
	acc, err := p.fold()
	if err != nil {
		return nil, err
	}
	return acc.Threshold(tau), nil
}

// Updates returns the number of updates submitted so far. Updates staged in
// a Batcher are counted when shipped, not when staged.
func (p *Pipeline) Updates() uint64 { return p.n.Load() }

// ShardStats reports one shard's counters.
type ShardStats struct {
	// Applied counts updates absorbed into the shard sketch. It lags
	// updates submitted (Pipeline.Updates) by up to the shard queue's
	// current content plus anything still staged in Batchers: workers
	// publish it at quiescent points (a served fold or worker exit), so
	// only after a fold or Close is it exact. The instantaneous gap
	// between submitted and the sum of Applied is in-flight work, of
	// which QueueLen is the per-shard queued portion.
	Applied uint64
	// Served counts fold requests this shard answered.
	Served uint64
	// QueueLen is the shard queue's instantaneous occupancy in channel
	// messages (a scalar update and a whole staged batch each count 1) —
	// the backpressure signal: a shard pinned at the queue depth is
	// stalling its producers.
	QueueLen int
}

// Stats returns a per-shard snapshot of worker counters.
func (p *Pipeline) Stats() []ShardStats {
	out := make([]ShardStats, len(p.shards))
	for i, w := range p.shards {
		w.statMu.Lock()
		out[i] = ShardStats{Applied: w.applied, Served: w.served, QueueLen: len(w.updates)}
		w.statMu.Unlock()
	}
	return out
}

// RegisterTelemetry attaches a telemetry bundle registered on reg and
// registers the pipeline's scrape-time probes: total submitted updates and
// one queue-depth gauge per shard. Call it at most once per pipeline and
// registry pair (series registration panics on duplicates); the pipeline may
// already be ingesting — the bundle attaches atomically.
func (p *Pipeline) RegisterTelemetry(reg *telemetry.Registry) {
	tel := telemetry.NewPipelineMetrics(reg)
	reg.CounterFunc("dcsketch_pipeline_submitted_total",
		"Updates submitted to the pipeline (batches count when shipped).",
		p.Updates)
	reg.CounterFunc("dcsketch_shed_batches_total",
		"Whole staged batches dropped by pipeline load shedding.",
		p.shedBatches.Load)
	reg.CounterFunc("dcsketch_shed_updates_total",
		"Updates inside staged batches dropped by pipeline load shedding.",
		p.shedUpdates.Load)
	for i, w := range p.shards {
		w := w
		reg.GaugeFunc("dcsketch_pipeline_queue_depth{shard=\""+strconv.Itoa(i)+"\"}",
			"Instantaneous shard queue occupancy in channel messages.",
			func() int64 { return int64(len(w.updates)) })
	}
	p.tel.Store(tel)
}

// AttachTracer acquires one flight-recorder ring per shard worker (writer
// tag = shard index) so StageShardApply events land in rec. Call at most
// once; the pipeline may already be ingesting — rings attach atomically,
// exactly like RegisterTelemetry's bundle.
func (p *Pipeline) AttachTracer(rec *tracelog.Recorder) {
	for i, w := range p.shards {
		w.ring.Store(rec.Acquire(uint32(i)))
	}
}

// Shards returns the worker count.
func (p *Pipeline) Shards() int { return len(p.shards) }

// Close stops all workers after their queues drain and waits for them to
// exit. Idempotent; queries remain answerable after Close. Producers using a
// Batcher must Flush it first.
func (p *Pipeline) Close() {
	p.closing.Do(func() {
		for _, w := range p.shards {
			close(w.updates)
		}
		for _, w := range p.shards {
			<-w.done
		}
	})
}
