// Package pipeline provides multi-core ingestion for the tracking sketch: a
// sharded pool of workers, each owning a private Tracking Distinct-Count
// Sketch, with flow updates routed by pair hash so every (src,dst) pair's
// inserts and deletes land on the same worker in order. Because sketches
// with one seed merge exactly, a query drains the shards and combines them
// into one answer — the single-node analogue of the paper's multi-monitor
// collector (Fig. 1), used when one core cannot keep up with the link rate.
//
// Concurrency contract: Update may be called from any number of producer
// goroutines (it blocks for backpressure when a shard queue is full). TopK
// and Threshold may run concurrently with producers; each returns a
// consistent-per-shard snapshot (shards are folded in sequence, so the
// combined view is not a single atomic cut of the stream — the usual and
// acceptable semantics for monitoring). Close stops the workers and waits
// for them to exit; no update may be submitted after Close.
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/tdcs"
)

// DefaultQueueDepth is the per-shard update queue length. Deeper queues
// smooth bursts at the cost of latency for the fold in TopK.
const DefaultQueueDepth = 1024

// update is one queued flow update.
type update struct {
	key   uint64
	delta int64
}

// foldRequest asks a worker to merge its sketch into acc at a quiescent
// point of its own loop.
type foldRequest struct {
	acc  *tdcs.Sketch
	done chan error
}

// worker owns one shard. The sketch is private to the loop goroutine (the
// documented single-writer discipline); stats are the only cross-goroutine
// worker state and live behind statMu so Stats can read them live.
type worker struct {
	updates chan update
	folds   chan foldRequest
	sketch  *tdcs.Sketch
	done    chan struct{}

	statMu sync.Mutex
	// applied counts updates absorbed into the shard sketch, published at
	// each quiescent point (fold or exit). guarded by statMu
	applied uint64
	// served counts fold requests this worker answered. guarded by statMu
	served uint64
}

func (w *worker) loop() {
	defer close(w.done)
	applied := uint64(0)
	publish := func(foldServed bool) {
		w.statMu.Lock()
		w.applied = applied
		if foldServed {
			w.served++
		}
		w.statMu.Unlock()
	}
	defer publish(false)
	for {
		select {
		case u, ok := <-w.updates:
			if !ok {
				// Queue closed and fully drained: exit. Fold
				// requests racing with shutdown are redirected
				// by the coordinator once done closes.
				return
			}
			w.sketch.UpdateKey(u.key, u.delta)
			applied++
		case req := <-w.folds:
			// Prefer pending updates: drain the queue before
			// folding so queries observe everything submitted
			// before them (per shard).
			drained := false
			for !drained {
				select {
				case u, ok := <-w.updates:
					if !ok {
						drained = true
						break
					}
					w.sketch.UpdateKey(u.key, u.delta)
					applied++
				default:
					drained = true
				}
			}
			publish(true)
			req.done <- req.acc.Merge(w.sketch) //lint:seedok fold builds acc from p.cfg, the same config every shard sketch is built from
		}
	}
}

// Pipeline is the sharded ingestion pool.
type Pipeline struct {
	cfg     dcs.Config
	shards  []*worker
	router  *hashing.Tab64
	n       atomic.Uint64
	closing sync.Once
}

// New builds a pipeline with the given number of shard workers (>= 1).
// queueDepth <= 0 selects DefaultQueueDepth.
func New(cfg dcs.Config, workers, queueDepth int) (*Pipeline, error) {
	if workers < 1 {
		return nil, fmt.Errorf("pipeline: workers = %d, must be >= 1", workers)
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	// Validate the config once and reuse the defaulted form so all
	// shards (and query accumulators) share one seed and are mergeable.
	probe, err := tdcs.New(cfg)
	if err != nil {
		return nil, err
	}
	cfg = probe.Config()

	p := &Pipeline{
		cfg:    cfg,
		shards: make([]*worker, workers),
		router: hashing.NewTab64(cfg.Seed ^ 0x9e3779b97f4a7c15),
	}
	for i := range p.shards {
		var sk *tdcs.Sketch
		if i == 0 {
			sk = probe // reuse the validation sketch
		} else {
			sk, err = tdcs.New(cfg)
			if err != nil {
				return nil, err
			}
		}
		w := &worker{
			updates: make(chan update, queueDepth),
			folds:   make(chan foldRequest),
			sketch:  sk,
			done:    make(chan struct{}),
		}
		p.shards[i] = w
		go w.loop()
	}
	return p, nil
}

// Update routes one flow update to its shard, blocking when the shard's
// queue is full (backpressure). Calling Update after Close panics, as does
// sending on any closed channel; the contract forbids it.
func (p *Pipeline) Update(src, dst uint32, delta int64) {
	p.UpdateKey(hashing.PairKey(src, dst), delta)
}

// UpdateKey is Update on a packed pair key.
func (p *Pipeline) UpdateKey(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	shard := p.router.Bucket(key, len(p.shards))
	p.shards[shard].updates <- update{key: key, delta: delta}
	p.n.Add(1)
}

// fold merges every shard's sketch into a fresh accumulator.
func (p *Pipeline) fold() (*tdcs.Sketch, error) {
	acc, err := tdcs.New(p.cfg)
	if err != nil {
		return nil, err
	}
	for i, w := range p.shards {
		req := foldRequest{acc: acc, done: make(chan error, 1)}
		select {
		case w.folds <- req:
			if err := <-req.done; err != nil {
				return nil, fmt.Errorf("pipeline: fold shard %d: %w", i, err)
			}
		case <-w.done:
			// Worker already stopped (Close): its sketch is
			// quiescent, merge directly.
			if err := acc.Merge(w.sketch); err != nil { //lint:seedok acc is built from p.cfg, the same config every shard sketch is built from
				return nil, fmt.Errorf("pipeline: fold stopped shard %d: %w", i, err)
			}
		}
	}
	return acc, nil
}

// TopK folds the shards and returns the combined top-k destinations.
func (p *Pipeline) TopK(k int) ([]dcs.Estimate, error) {
	acc, err := p.fold()
	if err != nil {
		return nil, err
	}
	return acc.TopK(k), nil
}

// Threshold folds the shards and returns all destinations with estimated
// frequency >= tau.
func (p *Pipeline) Threshold(tau int64) ([]dcs.Estimate, error) {
	acc, err := p.fold()
	if err != nil {
		return nil, err
	}
	ests := acc.Threshold(tau)
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].F != ests[j].F {
			return ests[i].F > ests[j].F
		}
		return ests[i].Dest < ests[j].Dest
	})
	return ests, nil
}

// Updates returns the number of updates submitted so far.
func (p *Pipeline) Updates() uint64 { return p.n.Load() }

// ShardStats reports one shard's counters. Applied lags submissions by the
// queue depth: workers publish it at quiescent points (a served fold or
// worker exit), so after a fold or Close it is exact.
type ShardStats struct {
	Applied uint64 // updates absorbed into the shard sketch
	Served  uint64 // fold requests answered
}

// Stats returns a per-shard snapshot of worker counters.
func (p *Pipeline) Stats() []ShardStats {
	out := make([]ShardStats, len(p.shards))
	for i, w := range p.shards {
		w.statMu.Lock()
		out[i] = ShardStats{Applied: w.applied, Served: w.served}
		w.statMu.Unlock()
	}
	return out
}

// Shards returns the worker count.
func (p *Pipeline) Shards() int { return len(p.shards) }

// Close stops all workers after their queues drain and waits for them to
// exit. Idempotent; queries remain answerable after Close.
func (p *Pipeline) Close() {
	p.closing.Do(func() {
		for _, w := range p.shards {
			close(w.updates)
		}
		for _, w := range p.shards {
			<-w.done
		}
	})
}
