package pipeline

import (
	"sync"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
)

// TestStatsUnderConcurrency hammers the pipeline from many producer
// goroutines while folds, stat reads, and a Close race along; -race checks
// the channel handoff of shard sketches and the statMu-guarded worker
// counters.
func TestStatsUnderConcurrency(t *testing.T) {
	p, err := New(dcs.Config{Seed: 77, Buckets: 32}, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 6, 2000
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := hashing.NewSplitMix64(uint64(g) + 1)
			for i := 0; i < perProducer; i++ {
				p.UpdateKey(rng.Next(), 1)
			}
		}(g)
	}
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := p.TopK(3); err != nil {
					t.Error(err)
					return
				}
				_ = p.Stats()
				_ = p.Updates()
			}
		}
	}()
	wg.Wait()
	close(stop)
	qwg.Wait()
	p.Close()
	if got := p.Updates(); got != producers*perProducer {
		t.Fatalf("submitted %d updates, want %d", got, producers*perProducer)
	}
	var applied uint64
	for _, st := range p.Stats() {
		applied += st.Applied
	}
	if applied != producers*perProducer {
		t.Fatalf("shards applied %d updates after Close, want %d", applied, producers*perProducer)
	}
}
