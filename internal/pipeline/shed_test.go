package pipeline

import (
	"testing"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/tracelog"
)

// wedgeShard blocks shard 0's worker at a quiescent point: the worker drains
// its queue, answers the fold, and then blocks sending the result into the
// unbuffered done channel until the returned release func reads it. While
// wedged, nothing drains the shard queue, so saturation is deterministic.
func wedgeShard(t *testing.T, p *Pipeline) (release func()) {
	t.Helper()
	acc, err := dcs.New(p.cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := foldRequest{acc: acc, done: make(chan error)}
	p.shards[0].folds <- req
	// The worker publishes served before blocking on the done send; once
	// Served ticks, the queue is drained and the worker is wedged.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats()[0].Served == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the fold")
		}
		time.Sleep(time.Millisecond)
	}
	return func() { <-req.done }
}

// TestSheddingDropsWholeBatches wedges the single shard worker, fills the
// depth-1 queue, and checks that further staged batches are shed whole:
// counted, recycled, and absent from the sketch — while everything accepted
// before saturation is still applied exactly.
func TestSheddingDropsWholeBatches(t *testing.T) {
	p, err := New(dcs.Config{Buckets: 64, Seed: 7}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.EnableShedding()

	release := wedgeShard(t, p)

	rec := tracelog.New(tracelog.Options{})
	ring := rec.Acquire(99)

	// Three staged batches against a wedged depth-1 queue: the first
	// occupies the queue slot, the next two shed.
	const perBatch = 8
	shipBatch := func(session, seq uint64) {
		b := p.NewBatcher()
		for i := 0; i < perBatch; i++ {
			b.UpdateKey(hashing.Mix64(seq*1000+uint64(i)), 1)
		}
		b.FlushTraced(ring, session, seq)
	}
	shipBatch(5, 1)
	shipBatch(5, 2)
	shipBatch(5, 3)

	if batches, updates := p.Shed(); batches != 2 || updates != 2*perBatch {
		t.Fatalf("Shed() = (%d, %d), want (2, %d)", batches, updates, 2*perBatch)
	}
	if got := p.Updates(); got != perBatch {
		t.Fatalf("Updates() = %d, want %d (shed batches must not count as submitted)", got, perBatch)
	}

	release()
	p.Close()

	// Exactly the accepted batch's updates are in the sketch.
	got, err := p.Threshold(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != perBatch {
		t.Fatalf("sketch holds %d keys, want %d (only the accepted batch)", len(got), perBatch)
	}

	// The flight recorder shows three stage events and two shed events,
	// each shed immediately chasing its stage record for the same seq.
	sheds := 0
	for _, ev := range rec.Events(nil) {
		if ev.Stage == tracelog.StageShardShed {
			sheds++
			if ev.Session != 5 || ev.Seq < 2 || ev.N != perBatch {
				t.Fatalf("unexpected shed event %+v", ev)
			}
		}
	}
	if sheds != 2 {
		t.Fatalf("recorded %d shard-shed events, want 2", sheds)
	}
}

// TestSheddingOffBlocksInstead pins the default contract: without
// EnableShedding a ship into a full queue blocks rather than drops, so the
// shed counters stay zero and every update lands.
func TestSheddingOffBlocksInstead(t *testing.T) {
	p, err := New(dcs.Config{Buckets: 64, Seed: 11}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	release := wedgeShard(t, p)
	done := make(chan struct{})
	go func() {
		defer close(done)
		b := p.NewBatcher()
		for i := 0; i < 4*DefaultBatchSize; i++ {
			b.UpdateKey(hashing.Mix64(uint64(i)), 1)
		}
		b.Flush()
	}()

	select {
	case <-done:
		t.Fatal("producer finished against a wedged depth-1 queue; expected it to block")
	case <-time.After(50 * time.Millisecond):
	}
	release()
	<-done
	p.Close()

	if batches, updates := p.Shed(); batches != 0 || updates != 0 {
		t.Fatalf("Shed() = (%d, %d) with shedding disabled, want (0, 0)", batches, updates)
	}
	if got := p.Updates(); got != 4*DefaultBatchSize {
		t.Fatalf("Updates() = %d, want %d", got, 4*DefaultBatchSize)
	}
}
