package pipeline

import (
	"sync"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/tdcs"
)

func TestValidation(t *testing.T) {
	if _, err := New(dcs.Config{}, 0, 0); err == nil {
		t.Fatal("workers=0 accepted")
	}
	if _, err := New(dcs.Config{Buckets: 1}, 2, 0); err == nil {
		t.Fatal("invalid sketch config accepted")
	}
}

func TestMatchesSingleSketch(t *testing.T) {
	// The folded pipeline answer must exactly equal a single sketch fed
	// the same stream (same seed, merge linearity).
	cfg := dcs.Config{Buckets: 128, Seed: 5}
	p, err := New(cfg, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	single, err := tdcs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := hashing.NewSplitMix64(7)
	var live []uint64
	for i := 0; i < 20000; i++ {
		if len(live) > 0 && rng.Next()%4 == 0 {
			idx := int(rng.Next() % uint64(len(live)))
			key := live[idx]
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
			p.UpdateKey(key, -1)
			single.UpdateKey(key, -1)
		} else {
			key := hashing.Mix64(rng.Next() % 8000)
			live = append(live, key)
			p.UpdateKey(key, 1)
			single.UpdateKey(key, 1)
		}
	}
	p.Close()

	got, err := p.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	want := single.TopK(10)
	if len(got) != len(want) {
		t.Fatalf("TopK lengths: pipeline %d, single %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK[%d]: pipeline %+v, single %+v", i, got[i], want[i])
		}
	}
	if p.Updates() != 20000 {
		t.Fatalf("Updates = %d", p.Updates())
	}
}

func TestConcurrentProducersAndQueries(t *testing.T) {
	p, err := New(dcs.Config{Buckets: 128, Seed: 9}, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const producers = 6
	const perProducer = 5000
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				src := uint32(g)<<20 | uint32(i)
				p.Update(src, 443, 1)
			}
		}(g)
	}
	// Query concurrently with production: must not deadlock or race.
	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		for i := 0; i < 20; i++ {
			if _, err := p.TopK(3); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-queryDone

	top, err := p.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(producers * perProducer)
	if len(top) != 1 || top[0].Dest != 443 {
		t.Fatalf("TopK = %+v", top)
	}
	if top[0].F < want*8/10 || top[0].F > want*12/10 {
		t.Fatalf("estimate %d, want ~%d", top[0].F, want)
	}
}

func TestPairOrderingPreservedPerShard(t *testing.T) {
	// Inserts and deletes of one pair from one producer must be applied
	// in order (they route to the same shard queue): the net result of
	// insert-then-delete is empty.
	p, err := New(dcs.Config{Buckets: 128, Seed: 11}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3000; i++ {
		key := hashing.Mix64(uint64(i % 50))
		p.UpdateKey(key, 1)
		p.UpdateKey(key, -1)
	}
	p.Close()
	top, err := p.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 0 {
		t.Fatalf("cancelled stream left %+v", top)
	}
}

func TestQueriesAfterClose(t *testing.T) {
	p, err := New(dcs.Config{Buckets: 128, Seed: 13}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		p.Update(i, 9, 1)
	}
	p.Close()
	p.Close() // idempotent
	top, err := p.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Dest != 9 {
		t.Fatalf("TopK after Close = %+v", top)
	}
	got, err := p.Threshold(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Threshold after Close = %+v", got)
	}
}

func TestZeroDeltaIgnored(t *testing.T) {
	p, err := New(dcs.Config{Seed: 15}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Update(1, 2, 0)
	if p.Updates() != 0 {
		t.Fatal("zero delta counted")
	}
	if p.Shards() != 1 {
		t.Fatalf("Shards = %d", p.Shards())
	}
}
