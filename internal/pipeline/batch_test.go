package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/tdcs"
)

// TestBatcherMatchesSingleSketch checks that a stream submitted through the
// batched fast path — mixed with scalar submissions for other pairs — folds
// to exactly the answer of a single sketch fed the same stream.
func TestBatcherMatchesSingleSketch(t *testing.T) {
	cfg := dcs.Config{Buckets: 128, Seed: 41}
	p, err := New(cfg, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	single, err := tdcs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	b := p.NewBatcher()
	rng := hashing.NewSplitMix64(43)
	var live []uint64
	for i := 0; i < 20000; i++ {
		if len(live) > 0 && rng.Next()%4 == 0 {
			idx := int(rng.Next() % uint64(len(live)))
			key := live[idx]
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
			b.UpdateKey(key, -1)
			single.UpdateKey(key, -1)
		} else {
			key := hashing.Mix64(rng.Next() % 6000)
			live = append(live, key)
			b.UpdateKey(key, 1)
			single.UpdateKey(key, 1)
		}
		// A disjoint key range goes through the scalar path, exercising
		// envelope interleaving on the shard queues.
		if i%97 == 0 {
			key := hashing.Mix64(1<<40 + uint64(i))
			p.UpdateKey(key, 1)
			single.UpdateKey(key, 1)
		}
	}
	b.Flush()
	p.Close()

	got, err := p.Threshold(1)
	if err != nil {
		t.Fatal(err)
	}
	want := single.Threshold(1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Threshold: pipeline %d entries, single %d entries, unequal", len(got), len(want))
	}
	if gotN, wantN := p.Updates(), single.Updates(); gotN != wantN {
		t.Fatalf("updates %d != %d", gotN, wantN)
	}
}

// TestBatcherFlushVisibility checks the visibility contract: staged updates
// are invisible to a fold until shipped, and all of them are visible after
// Flush.
func TestBatcherFlushVisibility(t *testing.T) {
	p, err := New(dcs.Config{Seed: 47}, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b := p.NewBatcher()
	// Stage fewer updates than a batch: nothing may reach the shards.
	for src := uint32(0); src < 100; src++ {
		b.Update(src, 0x0a000001, 1)
	}
	ests, err := p.Threshold(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 0 {
		t.Fatalf("staged updates visible before Flush: %v", ests)
	}

	b.Flush()
	ests, err = p.Threshold(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || ests[0].Dest != 0x0a000001 {
		t.Fatalf("flushed updates not visible: %v", ests)
	}

	// Flush with nothing staged is a no-op.
	b.Flush()
	if got := p.Updates(); got != 100 {
		t.Fatalf("updates = %d, want 100", got)
	}
}

// TestBatchersFlushesRacingFolds runs several Batcher producers (with
// mid-stream flushes) against concurrent fold queries, then checks the final
// answer against a single reference sketch. Folds racing the producers must
// neither lose nor duplicate updates.
func TestBatchersFlushesRacingFolds(t *testing.T) {
	cfg := dcs.Config{Buckets: 128, Seed: 53}
	p, err := New(cfg, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const producers = 4
	const perProducer = 8000
	var wg sync.WaitGroup

	// Each producer owns a disjoint key range, so per-pair ordering is
	// guaranteed regardless of cross-producer interleaving.
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			b := p.NewBatcher()
			rng := hashing.NewSplitMix64(uint64(100 + pr))
			var live []uint64
			for i := 0; i < perProducer; i++ {
				if len(live) > 0 && rng.Next()%4 == 0 {
					idx := int(rng.Next() % uint64(len(live)))
					key := live[idx]
					live[idx] = live[len(live)-1]
					live = live[:len(live)-1]
					b.UpdateKey(key, -1)
				} else {
					key := hashing.Mix64(uint64(pr)<<32 | rng.Next()%3000)
					live = append(live, key)
					b.UpdateKey(key, 1)
				}
				if i%1000 == 999 {
					b.Flush() // mid-stream flushes race the folds below
				}
			}
			b.Flush()
		}(pr)
	}

	// Queries run while producers are mid-stream; answers just need to be
	// well-formed (the final equivalence is checked after the join).
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := p.TopK(5); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Reference: same streams, single sketch, any order (the final counter
	// state is order-independent — the sketch is linear).
	single, err := tdcs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pr := 0; pr < producers; pr++ {
		rng := hashing.NewSplitMix64(uint64(100 + pr))
		var live []uint64
		for i := 0; i < perProducer; i++ {
			if len(live) > 0 && rng.Next()%4 == 0 {
				idx := int(rng.Next() % uint64(len(live)))
				key := live[idx]
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				single.UpdateKey(key, -1)
			} else {
				key := hashing.Mix64(uint64(pr)<<32 | rng.Next()%3000)
				live = append(live, key)
				single.UpdateKey(key, 1)
			}
		}
	}

	// Stop the querier, join everything, then compare.
	close(done)
	wg.Wait()
	p.Close()

	got, err := p.Threshold(1)
	if err != nil {
		t.Fatal(err)
	}
	want := single.Threshold(1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Threshold after racing folds: pipeline %d entries != single %d entries", len(got), len(want))
	}
	if gotN, wantN := p.Updates(), single.Updates(); gotN != wantN {
		t.Fatalf("updates %d != %d", gotN, wantN)
	}
}
