package pipeline

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/telemetry"
)

// TestTelemetryScrapeDuringIngest serves /metrics from a live registry and
// scrapes it over HTTP while producers ingest through Batchers and readers
// poll Stats — the race-detector workout for the whole export path.
func TestTelemetryScrapeDuringIngest(t *testing.T) {
	p, err := New(dcs.Config{Buckets: 64, Seed: 3}, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	reg := telemetry.NewRegistry()
	p.RegisterTelemetry(reg)
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	const (
		producers  = 4
		perWorker  = 5000
		scrapers   = 2
		statsReads = 200
	)
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			b := p.NewBatcher()
			rng := hashing.NewSplitMix64(uint64(pr) + 1)
			for i := 0; i < perWorker; i++ {
				b.UpdateKey(hashing.Mix64(rng.Next()%4096), 1)
			}
			b.Flush()
		}(pr)
	}
	scrapeErrs := make(chan error, scrapers)
	for sc := 0; sc < scrapers; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(ts.URL)
				if err != nil {
					scrapeErrs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					scrapeErrs <- err
					return
				}
				if err := telemetry.ValidatePrometheusText(body); err != nil {
					scrapeErrs <- err
					return
				}
			}
			scrapeErrs <- nil
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < statsReads; i++ {
			for _, st := range p.Stats() {
				_ = st.QueueLen
			}
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	close(scrapeErrs)
	for err := range scrapeErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// After Close every queued batch has been applied; the exported applied
	// counter must agree with the submitted total.
	p.Close()
	want := float64(producers * perWorker)
	vals := map[string]float64{}
	for _, s := range reg.Snapshot() {
		vals[s.Name] = s.Value
	}
	if vals["dcsketch_pipeline_submitted_total"] != want {
		t.Fatalf("submitted_total = %v, want %v", vals["dcsketch_pipeline_submitted_total"], want)
	}
	if vals["dcsketch_pipeline_applied_total"] != want {
		t.Fatalf("applied_total = %v, want %v", vals["dcsketch_pipeline_applied_total"], want)
	}
	for i := 0; i < 4; i++ {
		name := `dcsketch_pipeline_queue_depth{shard="` + string(rune('0'+i)) + `"}`
		if v, ok := vals[name]; !ok || v != 0 {
			t.Fatalf("%s = %v (present=%v), want 0 after Close", name, v, ok)
		}
	}
}
