package workload

import (
	"testing"

	"dcsketch/internal/exact"
)

func TestGenerateValidation(t *testing.T) {
	cases := []Config{
		{DistinctPairs: 0, Destinations: 1},
		{DistinctPairs: 10, Destinations: 0},
		{DistinctPairs: 5, Destinations: 10}, // U < d
		{DistinctPairs: 10, Destinations: 2, Skew: -1},
	}
	for _, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) accepted invalid config", cfg)
		}
	}
}

func TestGroundTruthMatchesActualStream(t *testing.T) {
	w, err := Generate(Config{DistinctPairs: 20000, Destinations: 500, Skew: 1.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := exact.New()
	for _, u := range w.Updates() {
		tr.Update(u.Src, u.Dst, int64(u.Delta))
	}
	if got := tr.DistinctPairs(); got != 20000 {
		t.Fatalf("stream has %d distinct pairs, want exactly 20000", got)
	}
	for _, e := range w.TrueTopK(500) {
		if got := tr.F(e.Dest); got != e.F {
			t.Fatalf("dest %d: stream frequency %d, declared truth %d", e.Dest, got, e.F)
		}
	}
}

func TestTopKOrdering(t *testing.T) {
	w, err := Generate(Config{DistinctPairs: 10000, Destinations: 100, Skew: 1.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	top := w.TrueTopK(100)
	if len(top) != 100 {
		t.Fatalf("TrueTopK(100) returned %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].F > top[i-1].F {
			t.Fatalf("truth not sorted at %d: %+v > %+v", i, top[i], top[i-1])
		}
	}
	if got := len(w.TrueTopK(1000)); got != 100 {
		t.Fatalf("TrueTopK beyond d returned %d", got)
	}
	if got := len(w.TrueTopK(-1)); got != 0 {
		t.Fatalf("TrueTopK(-1) returned %d", got)
	}
}

func TestSkewConcentration(t *testing.T) {
	w, err := Generate(Config{DistinctPairs: 100000, Destinations: 1000, Skew: 2.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var top5 int64
	for _, e := range w.TrueTopK(5) {
		top5 += e.F
	}
	if float64(top5)/100000 < 0.95 {
		t.Fatalf("z=2.5 top-5 mass = %d/100000, want > 95%%", top5)
	}
}

func TestEveryDestinationPresent(t *testing.T) {
	w, err := Generate(Config{DistinctPairs: 5000, Destinations: 50, Skew: 1.0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dests := make(map[uint32]bool)
	for _, u := range w.Updates() {
		dests[u.Dst] = true
	}
	if len(dests) != 50 {
		t.Fatalf("stream touches %d destinations, want 50", len(dests))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{DistinctPairs: 1000, Destinations: 20, Skew: 1.0, Seed: 9}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ua, ub := a.Updates(), b.Updates()
	if len(ua) != len(ub) {
		t.Fatal("lengths differ")
	}
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("update %d differs", i)
		}
	}
}

func TestSeedsProduceDifferentAddresses(t *testing.T) {
	a, err := Generate(Config{DistinctPairs: 100, Destinations: 10, Skew: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{DistinctPairs: 100, Destinations: 10, Skew: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates()[0] == b.Updates()[0] {
		t.Fatal("different seeds produced identical first update")
	}
}

func TestPaperDefaults(t *testing.T) {
	cfg := PaperDefaults(1.0, 1.5, 7)
	if cfg.DistinctPairs != 8e6 || cfg.Destinations != 5e4 {
		t.Fatalf("full-scale defaults = %+v", cfg)
	}
	small := PaperDefaults(0.01, 1.5, 7)
	if small.DistinctPairs != 80000 || small.Destinations != 500 {
		t.Fatalf("1%%-scale defaults = %+v", small)
	}
	tiny := PaperDefaults(1e-9, 1, 7)
	if tiny.DistinctPairs < 1 || tiny.Destinations < 1 {
		t.Fatalf("degenerate scale must clamp: %+v", tiny)
	}
}

func TestSourceReplays(t *testing.T) {
	w, err := Generate(Config{DistinctPairs: 100, Destinations: 5, Skew: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	src := w.Source()
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("source yielded %d updates, want 100", n)
	}
}
