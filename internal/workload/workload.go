// Package workload implements the paper's synthetic update-stream generator
// (§6.1): a stream whose U distinct source-destination pairs are spread over
// d distinct destinations with Zipfian skew z, i.e. the destination of rank i
// receives a 1/i^z share of the distinct sources. The paper's experiments
// use U ∈ [2·10^6, 16·10^6], d ∈ [10^3, 10^5] and z ∈ [1, 2.5] with defaults
// U = 8·10^6, d = 5·10^4.
//
// Addresses are minted through keyed 32-bit permutations, so all generated
// pairs are distinct by construction and the ground-truth frequencies are
// exact: f of the rank-i destination is precisely its partition share.
package workload

import (
	"fmt"
	"sort"

	"dcsketch/internal/hashing"
	"dcsketch/internal/stream"
	"dcsketch/internal/zipf"
)

// Config parametrizes a synthetic workload, mirroring the paper's (U, d, z).
type Config struct {
	// DistinctPairs is U, the number of distinct source-destination pairs.
	DistinctPairs int64
	// Destinations is d, the number of distinct destination addresses.
	Destinations int
	// Skew is the Zipf parameter z.
	Skew float64
	// Seed makes the workload reproducible.
	Seed uint64
}

// PaperDefaults returns the paper's default experiment parameters at the
// given scale factor: scale = 1 reproduces U = 8·10^6, d = 5·10^4; smaller
// scales shrink both proportionally for laptop-speed runs while preserving
// the U/d ratio (160 distinct sources per destination on average).
func PaperDefaults(scale float64, skew float64, seed uint64) Config {
	u := int64(8e6 * scale)
	if u < 1 {
		u = 1
	}
	d := int(5e4 * scale)
	if d < 1 {
		d = 1
	}
	return Config{DistinctPairs: u, Destinations: d, Skew: skew, Seed: seed}
}

// Workload is a generated stream with exact ground truth.
type Workload struct {
	cfg Config
	// updates is the insert-only update sequence, in generation order.
	// The sketch is order-independent, so no shuffle is applied; callers
	// that need arrival-order realism can stream.Shuffle it.
	updates []stream.Update
	// truth maps each destination address to its exact distinct-source
	// frequency.
	truth map[uint32]int64
	// top lists destinations by descending frequency (ties by ascending
	// address), i.e. the true top-k prefix order.
	top []TruthEntry
}

// TruthEntry is one destination with its exact frequency.
type TruthEntry struct {
	Dest uint32
	F    int64
}

// Generate builds the workload.
func Generate(cfg Config) (*Workload, error) {
	if cfg.DistinctPairs < 1 {
		return nil, fmt.Errorf("workload: DistinctPairs = %d, must be positive", cfg.DistinctPairs)
	}
	if cfg.Destinations < 1 {
		return nil, fmt.Errorf("workload: Destinations = %d, must be positive", cfg.Destinations)
	}
	if cfg.DistinctPairs < int64(cfg.Destinations) {
		return nil, fmt.Errorf("workload: U = %d < d = %d; every destination needs at least one pair",
			cfg.DistinctPairs, cfg.Destinations)
	}
	dist, err := zipf.New(cfg.Destinations, cfg.Skew)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	shares := dist.Partition(cfg.DistinctPairs)

	destPerm := hashing.NewPerm32(cfg.Seed ^ 0xd357)
	srcPerm := hashing.NewPerm32(cfg.Seed ^ 0x51c5)

	w := &Workload{
		cfg:     cfg,
		updates: make([]stream.Update, 0, cfg.DistinctPairs),
		truth:   make(map[uint32]int64, cfg.Destinations),
	}
	var srcCounter uint32
	for i, share := range shares {
		dst := destPerm.Apply(uint32(i))
		w.truth[dst] = share
		for j := int64(0); j < share; j++ {
			src := srcPerm.Apply(srcCounter)
			srcCounter++
			w.updates = append(w.updates, stream.Update{Src: src, Dst: dst, Delta: 1})
		}
	}

	w.top = make([]TruthEntry, 0, cfg.Destinations)
	for dst, f := range w.truth {
		w.top = append(w.top, TruthEntry{Dest: dst, F: f})
	}
	sort.Slice(w.top, func(a, b int) bool {
		if w.top[a].F != w.top[b].F {
			return w.top[a].F > w.top[b].F
		}
		return w.top[a].Dest < w.top[b].Dest
	})
	return w, nil
}

// Config returns the generating parameters.
func (w *Workload) Config() Config { return w.cfg }

// Updates returns the update sequence. The slice is owned by the workload;
// callers must not mutate it.
func (w *Workload) Updates() []stream.Update { return w.updates }

// Source returns a replayable stream source over the updates.
func (w *Workload) Source() *stream.SliceSource { return stream.NewSliceSource(w.updates) }

// TrueF returns the exact frequency of dest (zero if absent).
func (w *Workload) TrueF(dest uint32) int64 { return w.truth[dest] }

// TrueTopK returns the exact top-k destinations by frequency.
func (w *Workload) TrueTopK(k int) []TruthEntry {
	if k > len(w.top) {
		k = len(w.top)
	}
	if k < 0 {
		k = 0
	}
	return w.top[:k]
}

// DistinctPairs returns U.
func (w *Workload) DistinctPairs() int64 { return w.cfg.DistinctPairs }
