// Package monitor implements the DDoS MONITOR of the paper's architecture
// (Fig. 1): a component that consumes one or more flow-update streams,
// maintains a Tracking Distinct-Count Sketch, periodically evaluates the
// top-k distinct-source frequencies against baseline activity profiles
// (EWMA over time, per §2: "comparing against 'baseline' profiles of network
// activity created over longer periods"), and raises alerts for destinations
// whose half-open population is anomalously large.
//
// Multiple edge monitors can run independently (one per ingress point) and a
// Collector merges their sketches — the sketch is a linear stream summary,
// so the merged sketch is exactly the sketch of the union stream.
package monitor

import (
	"fmt"
	"sync"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/telemetry"
)

// Default monitor parameters.
const (
	DefaultK               = 10
	DefaultCheckInterval   = 8192
	DefaultBaselineAlpha   = 0.05
	DefaultThresholdFactor = 5.0
	DefaultMinFrequency    = 64
	DefaultMaxAlerts       = 1024
)

// Config parametrizes a Monitor. Zero fields take package defaults.
type Config struct {
	// Sketch configures the underlying tracking sketch. All monitors
	// that will be merged by one Collector must share it (seed included).
	Sketch dcs.Config
	// K is how many top destinations each check inspects.
	K int
	// CheckInterval is the number of stream updates between checks —
	// continuous tracking is cheap (O(k log k)), so small intervals are
	// viable; this is the knob Fig. 9 sweeps as "query frequency".
	CheckInterval int
	// BaselineAlpha is the EWMA smoothing factor of the per-destination
	// baseline profile.
	BaselineAlpha float64
	// ThresholdFactor raises an alert when a destination's estimated
	// frequency exceeds ThresholdFactor times its baseline.
	ThresholdFactor float64
	// MinFrequency is an absolute floor below which no alert fires,
	// suppressing noise from tiny estimates.
	MinFrequency int64
	// MaxAlerts bounds the retained-alert ring: once more than MaxAlerts
	// alerts have been raised without being read, each new alert evicts
	// the oldest (counted in AlertStats.Dropped). Long-running monitors
	// previously grew the alert slice without bound.
	MaxAlerts int
	// MaxEvidence bounds the alert-evidence ledger (see Evidence); once
	// full, each new alert onset evicts the oldest retained entry.
	MaxEvidence int
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = DefaultK
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = DefaultCheckInterval
	}
	if c.BaselineAlpha == 0 {
		c.BaselineAlpha = DefaultBaselineAlpha
	}
	if c.ThresholdFactor == 0 {
		c.ThresholdFactor = DefaultThresholdFactor
	}
	if c.MinFrequency == 0 {
		c.MinFrequency = DefaultMinFrequency
	}
	if c.MaxAlerts == 0 {
		c.MaxAlerts = DefaultMaxAlerts
	}
	if c.MaxEvidence == 0 {
		c.MaxEvidence = DefaultMaxEvidence
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("monitor: K = %d, must be >= 1", c.K)
	case c.CheckInterval < 1:
		return fmt.Errorf("monitor: CheckInterval = %d, must be >= 1", c.CheckInterval)
	case c.BaselineAlpha <= 0 || c.BaselineAlpha > 1:
		return fmt.Errorf("monitor: BaselineAlpha = %v, must be in (0,1]", c.BaselineAlpha)
	case c.ThresholdFactor <= 1:
		return fmt.Errorf("monitor: ThresholdFactor = %v, must be > 1", c.ThresholdFactor)
	case c.MinFrequency < 1:
		return fmt.Errorf("monitor: MinFrequency = %d, must be >= 1", c.MinFrequency)
	case c.MaxAlerts < 1:
		return fmt.Errorf("monitor: MaxAlerts = %d, must be >= 1", c.MaxAlerts)
	case c.MaxEvidence < 1:
		return fmt.Errorf("monitor: MaxEvidence = %d, must be >= 1", c.MaxEvidence)
	}
	return nil
}

// Alert reports a destination whose half-open distinct-source population is
// anomalously high.
type Alert struct {
	// Dest is the suspected victim.
	Dest uint32
	// Estimated is the estimated distinct-source frequency at detection.
	Estimated int64
	// Baseline is the destination's EWMA profile at detection.
	Baseline float64
	// AtUpdate is the stream position (update count) of the detection.
	AtUpdate uint64
}

// Monitor is a single DDoS MONITOR instance. All methods are safe for
// concurrent use: the tracking sketch is single-writer by contract
// (internal/dcs), so the monitor serializes every access through one mutex —
// the mutex lives with the state it protects, and the sketchlint lockcheck
// analyzer enforces the pairing.
type Monitor struct {
	cfg Config

	// mu guards all mutable monitor state below.
	mu sync.Mutex

	// sketch is the tracking synopsis. guarded by mu
	sketch *tdcs.Sketch
	// baseline holds per-destination EWMA profiles of estimated
	// frequency, built only from top-k observations (the only
	// destinations a small-space monitor ever resolves). guarded by mu
	baseline map[uint32]float64
	// basevar holds per-destination EWMA variance of the estimate around
	// its baseline, learned with the same alpha and the same frozen-during-
	// excursion rule; snapshotted into alert evidence. guarded by mu
	basevar map[uint32]float64
	// alerting marks destinations currently above threshold, giving the
	// alert stream hysteresis: one alert per excursion, re-armed when
	// the frequency falls back to half the trigger level. guarded by mu
	alerting map[uint32]bool
	// alerts is a bounded ring of the most recently raised alerts
	// (capacity cfg.MaxAlerts); alertHead indexes the oldest retained
	// entry once the ring is full. guarded by mu
	alerts []Alert
	// alertHead is the ring's oldest-entry index. guarded by mu
	alertHead int
	// alertsRaised counts every alert ever raised. guarded by mu
	alertsRaised uint64
	// alertsSuppressed counts anomalous observations suppressed by
	// hysteresis (destination already in an excursion). guarded by mu
	alertsSuppressed uint64
	// alertsDropped counts alerts evicted from the full ring. guarded by mu
	alertsDropped uint64
	// evidence is the bounded alert-evidence ledger (capacity
	// cfg.MaxEvidence); evidenceHead indexes the oldest retained entry
	// once the ring is full. guarded by mu
	evidence []Evidence
	// evidenceHead is the ledger's oldest-entry index. guarded by mu
	evidenceHead int
	// evidenceSeq is the last issued Evidence.ID. guarded by mu
	evidenceSeq uint64
	// decodeRejectProbe, if set, reads the transport decode-reject counter
	// sampled into evidence; it runs with mu held and must be lock-free.
	// guarded by mu
	decodeRejectProbe func() uint64
	// cusumProbe, if set, reads the aggregate SYN/FIN tripwire sampled
	// into evidence; it runs with mu held and must be lock-free.
	// guarded by mu
	cusumProbe func() (value, threshold float64, alarm bool)
	// n counts consumed updates. guarded by mu
	n uint64

	// tel is the optional telemetry bundle; nil until RegisterTelemetry.
	// guarded by mu
	tel *telemetry.MonitorMetrics

	// onAlert is immutable after New; it is invoked with mu held and must
	// not call back into the monitor.
	onAlert func(Alert)
}

// New builds a monitor. onAlert, if non-nil, is invoked synchronously for
// every raised alert.
func New(cfg Config, onAlert func(Alert)) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sk, err := tdcs.New(cfg.Sketch)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:      cfg,
		sketch:   sk,
		baseline: make(map[uint32]float64),
		basevar:  make(map[uint32]float64),
		alerting: make(map[uint32]bool),
		onAlert:  onAlert,
	}, nil
}

// Config returns the monitor's effective configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Update consumes one flow update; it implements the stream.Sink shape.
func (m *Monitor) Update(src, dst uint32, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sketch.Update(src, dst, delta)
	m.n++
	if m.n%uint64(m.cfg.CheckInterval) == 0 {
		m.check()
	}
}

// UpdateBatch consumes a batch of pre-keyed flow updates under one lock
// acquisition, applying them through the sketch's batched kernel. The
// periodic check fires once if the batch crosses one or more CheckInterval
// boundaries — checks are rate-limiting, not per-update bookkeeping, so
// coalescing the crossings of one batch preserves the intended cadence.
func (m *Monitor) UpdateBatch(batch []dcs.KeyDelta) {
	if len(batch) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sketch.UpdateBatch(batch)
	before := m.n
	m.n += uint64(len(batch))
	if m.n/uint64(m.cfg.CheckInterval) > before/uint64(m.cfg.CheckInterval) {
		m.check()
	}
}

// check runs one tracking query and updates profiles and alerts.
//
//lint:locked mu
func (m *Monitor) check() {
	var start time.Time
	if m.tel != nil {
		m.tel.ChecksTotal.Inc()
		start = time.Now()
	}
	top := m.sketch.TopK(m.cfg.K)
	if m.tel != nil {
		m.tel.QueryLatency.Observe(uint64(time.Since(start)))
	}
	for _, e := range top {
		base := m.baseline[e.Dest]
		trigger := m.cfg.ThresholdFactor * base
		if float64(m.cfg.MinFrequency) > trigger {
			trigger = float64(m.cfg.MinFrequency)
		}
		switch {
		case float64(e.F) >= trigger && !m.alerting[e.Dest]:
			m.alerting[e.Dest] = true
			a := Alert{Dest: e.Dest, Estimated: e.F, Baseline: base, AtUpdate: m.n}
			m.pushAlert(a)
			m.captureEvidence(a, trigger, top)
			if m.onAlert != nil {
				m.onAlert(a)
			}
		case float64(e.F) >= trigger:
			// Still above trigger inside an excursion: hysteresis
			// holds the alert stream to one alert per excursion.
			m.alertsSuppressed++
		case float64(e.F) < trigger/2 && m.alerting[e.Dest]:
			delete(m.alerting, e.Dest)
		}
		// The profile absorbs current activity slowly, so diurnal
		// drift follows it — but learning is frozen during an alert
		// excursion so a sustained attack is never absorbed as the
		// new normal.
		if !m.alerting[e.Dest] {
			dev := float64(e.F) - base
			m.baseline[e.Dest] = base + m.cfg.BaselineAlpha*dev
			m.basevar[e.Dest] += m.cfg.BaselineAlpha * (dev*dev - m.basevar[e.Dest])
		}
	}
	if m.tel != nil {
		m.tel.CheckLatency.Observe(uint64(time.Since(start)))
	}
}

// pushAlert appends an alert to the bounded ring, evicting the oldest
// retained alert when the ring is at cfg.MaxAlerts.
//
//lint:locked mu
func (m *Monitor) pushAlert(a Alert) {
	m.alertsRaised++
	if len(m.alerts) < m.cfg.MaxAlerts {
		m.alerts = append(m.alerts, a)
		return
	}
	m.alerts[m.alertHead] = a
	m.alertHead = (m.alertHead + 1) % len(m.alerts)
	m.alertsDropped++
}

// Alerts returns a copy of the retained alerts, oldest first. At most
// Config.MaxAlerts alerts are retained; AlertStats reports how many were
// evicted before being read.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	n := copy(out, m.alerts[m.alertHead:])
	copy(out[n:], m.alerts[:m.alertHead])
	return out
}

// AlertStats reports the alert-ring bookkeeping counters.
type AlertStats struct {
	// Raised counts every alert ever raised.
	Raised uint64
	// Suppressed counts anomalous top-k observations that did not raise
	// an alert because their destination was already in an excursion.
	Suppressed uint64
	// Dropped counts alerts evicted from the full ring before being read.
	Dropped uint64
	// Retained is the number of alerts currently in the ring.
	Retained int
}

// AlertStats returns the current alert bookkeeping counters.
func (m *Monitor) AlertStats() AlertStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return AlertStats{
		Raised:     m.alertsRaised,
		Suppressed: m.alertsSuppressed,
		Dropped:    m.alertsDropped,
		Retained:   len(m.alerts),
	}
}

// Alerting reports whether dest is currently in an alert excursion.
func (m *Monitor) Alerting(dest uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alerting[dest]
}

// TopK exposes the current tracking answer. The result is a private copy:
// the sketch's answer is scratch valid only until the next query, and the
// monitor's callers read replies after m.mu is released.
func (m *Monitor) TopK(k int) []dcs.Estimate {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]dcs.Estimate(nil), m.sketch.TopK(k)...)
}

// Updates returns the number of consumed updates.
func (m *Monitor) Updates() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// MergeSketch folds an externally built sketch (e.g. one shipped over the
// wire from an edge exporter) into the monitor's tracking state. Both
// sketches must share one Config, seed included; incompatibility surfaces as
// tdcs's ErrIncompatible.
func (m *Monitor) MergeSketch(edge *tdcs.Sketch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sketch.Merge(edge) //lint:seedok wire contract: exporter must use the collector's seed; Merge rejects mismatches at runtime
}

// MergeBaseInto adds the monitor's raw counters into dst, a basic sketch
// sharing the monitor's sketch Config (seed included). Unlike MergeInto this
// skips dst's tracking-state rebuild, so a caller combining several counter
// sources (e.g. the server's sharded ingest pipeline plus this monitor) can
// merge them all and pay one rebuild at the end.
func (m *Monitor) MergeBaseInto(dst *dcs.Sketch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return dst.Merge(m.sketch.Base()) //lint:seedok caller contract mirrors MergeInto: dst must share the monitor's sketch config; Merge rejects mismatches at runtime
}

// MergeInto folds the monitor's sketch into dst while holding the monitor
// lock, so collectors observe a quiescent edge sketch. dst must share the
// monitor's sketch Config, seed included.
func (m *Monitor) MergeInto(dst *tdcs.Sketch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return dst.Merge(m.sketch) //lint:seedok collector contract: NewCollector requires the edge monitors' config; Merge rejects mismatches at runtime
}

// Sketch exposes the underlying tracking sketch, e.g. for serialization at
// an edge exporter. The caller must ensure no concurrent Update runs while
// it uses the returned sketch (prefer MergeInto for collector folds).
func (m *Monitor) Sketch() *tdcs.Sketch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sketch
}

// SketchHealth is a consistent snapshot of the sketch-health telemetry:
// the decode-outcome counters plus the tracking-layer occupancy signals.
type SketchHealth struct {
	// Query holds the decode-outcome counters and live sample shape.
	Query dcs.QueryStats
	// Rebuilds counts tracking-state reconstructions.
	Rebuilds uint64
	// LevelsNonEmpty counts first-level buckets with at least one
	// occupied second-level bucket.
	LevelsNonEmpty int
}

// SketchHealth reads the sketch-health snapshot under the monitor lock.
func (m *Monitor) SketchHealth() SketchHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sketchHealthLocked()
}

// sketchHealthLocked builds the health snapshot for callers already holding
// the monitor lock (SketchHealth, evidence capture inside check).
//
//lint:locked mu
func (m *Monitor) sketchHealthLocked() SketchHealth {
	return SketchHealth{
		Query:          m.sketch.QueryStats(),
		Rebuilds:       m.sketch.Rebuilds(),
		LevelsNonEmpty: m.sketch.Base().NonEmptyLevels(),
	}
}

// RegisterTelemetry attaches a live bundle (check counter, check/query
// latency histograms) and registers the monitor's scrape-time probes on reg:
// the alert lifecycle counters and the sketch-health series — decode
// outcomes, distinct-sample shape, level occupancy, rebuilds. Probes read
// the single-writer counters through the locked accessors (AlertStats,
// SketchHealth); call at most once per monitor and registry pair.
func (m *Monitor) RegisterTelemetry(reg *telemetry.Registry) {
	tel := telemetry.NewMonitorMetrics(reg)

	reg.CounterFunc("dcsketch_monitor_updates_total",
		"Flow updates consumed by the monitor.",
		m.Updates)
	reg.CounterFunc("dcsketch_monitor_alerts_raised_total",
		"Alerts raised into the alert ring.",
		func() uint64 { return m.AlertStats().Raised })
	reg.CounterFunc("dcsketch_monitor_alerts_suppressed_total",
		"Anomalous observations suppressed by hysteresis.",
		func() uint64 { return m.AlertStats().Suppressed })
	reg.CounterFunc("dcsketch_monitor_alerts_dropped_total",
		"Alerts evicted from the full alert ring before being read.",
		func() uint64 { return m.AlertStats().Dropped })
	reg.GaugeFunc("dcsketch_monitor_alerts_retained",
		"Alerts currently retained in the ring.",
		func() int64 { return int64(m.AlertStats().Retained) })

	reg.CounterFunc("dcsketch_sketch_queries_total",
		"Sketch queries (sampling passes plus tracked top-k answers).",
		func() uint64 { return m.SketchHealth().Query.Queries })
	reg.CounterFunc("dcsketch_sketch_decode_singletons_total",
		"Buckets decoded into a verified singleton pair.",
		func() uint64 { return m.SketchHealth().Query.DecodeSingletons })
	reg.CounterFunc("dcsketch_sketch_decode_failures_total",
		"Non-empty buckets that failed to decode (collisions, residue).",
		func() uint64 { return m.SketchHealth().Query.DecodeFailures })
	reg.CounterFunc("dcsketch_sketch_checksum_rejects_total",
		"Singleton decodes rejected by the fingerprint checksum.",
		func() uint64 { return m.SketchHealth().Query.ChecksumRejects })
	reg.CounterFunc("dcsketch_sketch_structural_rejects_total",
		"Singleton decodes rejected by the level/bucket re-hash check.",
		func() uint64 { return m.SketchHealth().Query.StructuralRejects })
	reg.CounterFunc("dcsketch_sketch_rebuilds_total",
		"Tracking-state reconstructions (merges, deserializations).",
		func() uint64 { return m.SketchHealth().Rebuilds })
	reg.GaugeFunc("dcsketch_sketch_sample_level",
		"First-level bucket the tracked top-k currently answers from.",
		func() int64 { return int64(m.SketchHealth().Query.SampleLevel) })
	reg.GaugeFunc("dcsketch_sketch_sample_size",
		"Distinct-sample size at the current sample level.",
		func() int64 { return int64(m.SketchHealth().Query.SampleSize) })
	reg.GaugeFunc("dcsketch_sketch_levels_nonempty",
		"First-level buckets with at least one occupied second-level bucket.",
		func() int64 { return int64(m.SketchHealth().LevelsNonEmpty) })

	m.mu.Lock()
	m.tel = tel
	m.mu.Unlock()
}

// Collector merges the sketches of several edge monitors into a global view
// of the network (Fig. 1: streams from many network elements feed one DDoS
// MONITOR; here each element pre-aggregates locally and ships its sketch).
type Collector struct {
	sketch *tdcs.Sketch
}

// NewCollector builds a collector; cfg must equal the edge monitors' sketch
// config (including seed) for merging to be possible.
func NewCollector(cfg dcs.Config) (*Collector, error) {
	sk, err := tdcs.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Collector{sketch: sk}, nil
}

// Gather resets the collector and merges the given monitors' sketches. Each
// monitor is folded under its own lock, so Gather is safe to run while the
// edges keep consuming updates (the combined view is per-edge consistent).
func (c *Collector) Gather(monitors ...*Monitor) error {
	c.sketch.Reset()
	for i, m := range monitors {
		if err := m.MergeInto(c.sketch); err != nil {
			return fmt.Errorf("monitor: merge sketch %d: %w", i, err)
		}
	}
	return nil
}

// TopK returns the network-wide top-k after Gather.
func (c *Collector) TopK(k int) []dcs.Estimate { return c.sketch.TopK(k) }

// Sketch exposes the merged sketch.
func (c *Collector) Sketch() *tdcs.Sketch { return c.sketch }
