// Alert-evidence ledger: a bounded ring of decision-input snapshots captured
// at alert onset, so an operator can answer "why did this alert fire?" after
// the fact — the sketch state, baselines and tripwire statistics that fed the
// decision are volatile and would otherwise be gone by the time anyone looks.
//
// Evidence capture happens inside check() with m.mu held, off the update hot
// path (alert onsets are rare by construction — hysteresis holds the stream
// to one per excursion), so unlike the tracelog record path it is allowed to
// allocate the top-k copy it retains.
package monitor

import "dcsketch/internal/dcs"

// DefaultMaxEvidence bounds the evidence ring when Config.MaxEvidence is 0.
// Evidence entries are much heavier than Alerts (they carry a top-k copy and
// a health snapshot), so the default retention is far smaller than MaxAlerts.
const DefaultMaxEvidence = 64

// Evidence snapshots every input of one alert decision at the moment the
// alert was raised.
type Evidence struct {
	// ID identifies the entry: 1 for the first alert ever raised by this
	// monitor, increasing by one per onset. IDs are stable across ring
	// eviction, so /debug/alerts/{id} references stay meaningful.
	ID uint64
	// Alert is the raised alert (victim, estimate, baseline, position).
	Alert Alert
	// Trigger is the effective alarm level the estimate was compared
	// against: max(ThresholdFactor x baseline, MinFrequency).
	Trigger float64
	// BaselineVar is the EWMA variance of the victim's estimated frequency
	// around its baseline profile — a spread measure that tells a noisy
	// baseline from a quiet one when judging the excursion.
	BaselineVar float64
	// TopK is a private copy of the tracked top-k answer the check ran on.
	TopK []dcs.Estimate
	// Health is the sketch-health snapshot at onset (decode outcomes,
	// sample shape, occupancy, rebuilds).
	Health SketchHealth
	// CUSUMValue, CUSUMThreshold and CUSUMAlarm snapshot the aggregate
	// SYN/FIN change-point tripwire, when one is attached via
	// SetCUSUMProbe; all zero otherwise.
	CUSUMValue     float64
	CUSUMThreshold float64
	CUSUMAlarm     bool
	// DecodeRejects snapshots the transport-layer reject counter attached
	// via SetDecodeRejectProbe (frames the server refused before they could
	// reach the sketch); 0 when no probe is attached.
	DecodeRejects uint64
}

// SetDecodeRejectProbe attaches a reader for the transport decode-reject
// counter sampled into each Evidence entry. The probe is invoked with m.mu
// held, so it must be lock-free (e.g. an atomic counter load) — taking any
// lock ordered after the monitor's would invert the module's lock order.
func (m *Monitor) SetDecodeRejectProbe(fn func() uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decodeRejectProbe = fn
}

// SetCUSUMProbe attaches a reader for the aggregate SYN/FIN tripwire sampled
// into each Evidence entry as (statistic, threshold, in-alarm). Like the
// decode-reject probe it runs with m.mu held and must be lock-free.
func (m *Monitor) SetCUSUMProbe(fn func() (value, threshold float64, alarm bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cusumProbe = fn
}

// captureEvidence snapshots the decision inputs of a just-raised alert into
// the bounded evidence ring, evicting the oldest entry when full.
//
//lint:locked mu
func (m *Monitor) captureEvidence(a Alert, trigger float64, top []dcs.Estimate) {
	m.evidenceSeq++
	ev := Evidence{
		ID:          m.evidenceSeq,
		Alert:       a,
		Trigger:     trigger,
		BaselineVar: m.basevar[a.Dest],
		TopK:        append(make([]dcs.Estimate, 0, len(top)), top...),
		Health:      m.sketchHealthLocked(),
	}
	if m.cusumProbe != nil {
		ev.CUSUMValue, ev.CUSUMThreshold, ev.CUSUMAlarm = m.cusumProbe()
	}
	if m.decodeRejectProbe != nil {
		ev.DecodeRejects = m.decodeRejectProbe()
	}
	if len(m.evidence) < m.cfg.MaxEvidence {
		m.evidence = append(m.evidence, ev)
		return
	}
	m.evidence[m.evidenceHead] = ev
	m.evidenceHead = (m.evidenceHead + 1) % len(m.evidence)
}

// Evidence returns a copy of the retained evidence entries, oldest first.
// The TopK slices are shared with the ledger but immutable after capture.
func (m *Monitor) Evidence() []Evidence {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Evidence, len(m.evidence))
	n := copy(out, m.evidence[m.evidenceHead:])
	copy(out[n:], m.evidence[:m.evidenceHead])
	return out
}

// EvidenceByID returns the ledger entry with the given ID, if it is still
// retained (false means it never existed or was evicted).
func (m *Monitor) EvidenceByID(id uint64) (Evidence, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.evidence {
		if m.evidence[i].ID == id {
			return m.evidence[i], true
		}
	}
	return Evidence{}, false
}
