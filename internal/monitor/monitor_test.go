package monitor

import (
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/stream"
)

func testConfig(seed uint64) Config {
	return Config{
		Sketch:        dcs.Config{Buckets: 256, Seed: seed},
		CheckInterval: 500,
		MinFrequency:  100,
	}
}

func mustMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func drive(m *Monitor, ups []stream.Update) {
	for _, u := range ups {
		m.Update(u.Src, u.Dst, int64(u.Delta))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: -1},
		{CheckInterval: -5},
		{BaselineAlpha: 2},
		{ThresholdFactor: 0.5},
		{MinFrequency: -1},
		{Sketch: dcs.Config{Buckets: 1}},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := mustMonitor(t, Config{})
	cfg := m.Config()
	if cfg.K != DefaultK || cfg.CheckInterval != DefaultCheckInterval ||
		cfg.BaselineAlpha != DefaultBaselineAlpha ||
		cfg.ThresholdFactor != DefaultThresholdFactor ||
		cfg.MinFrequency != DefaultMinFrequency {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestSYNFloodRaisesAlert(t *testing.T) {
	m := mustMonitor(t, testConfig(1))
	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 3000, Seed: 2}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, attack)
	alerts := m.Alerts()
	if len(alerts) == 0 {
		t.Fatal("SYN flood raised no alert")
	}
	if alerts[0].Dest != 443 {
		t.Fatalf("first alert names dest %d, want 443", alerts[0].Dest)
	}
	if !m.Alerting(443) {
		t.Fatal("victim must still be in alert state")
	}
}

func TestFlashCrowdDoesNotPersistAlert(t *testing.T) {
	// A completing flash crowd can transiently alert while the handshake
	// backlog is filling, but once completions flow the excursion ends —
	// whereas an attack never clears. This is the paper's discrimination
	// story.
	m := mustMonitor(t, testConfig(3))
	crowd, err := (stream.FlashCrowd{Dest: 80, Clients: 4000, CompletionRate: 1.0, CompletionLag: 8, Seed: 4}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, crowd)
	// Flush checks well past the crowd so the monitor observes the
	// emptied backlog.
	quiet, err := (stream.Background{Connections: 3000, Sources: 500, Destinations: 50, Seed: 5}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, quiet)
	if m.Alerting(80) {
		t.Fatal("crowd destination still alerting after all handshakes completed")
	}
}

func TestAttackOutlivesCrowd(t *testing.T) {
	m := mustMonitor(t, testConfig(6))
	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 2500, Seed: 7}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := (stream.FlashCrowd{Dest: 80, Clients: 2500, CompletionRate: 1.0, CompletionLag: 8, Seed: 8}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	mixed := stream.Interleave(9, attack, crowd)
	drive(m, mixed)
	quiet, err := (stream.Background{Connections: 2000, Sources: 400, Destinations: 40, Seed: 10}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, quiet)

	if !m.Alerting(443) {
		t.Fatal("attack victim no longer alerting")
	}
	if m.Alerting(80) {
		t.Fatal("crowd destination still alerting")
	}
	top := m.TopK(1)
	if len(top) == 0 || top[0].Dest != 443 {
		t.Fatalf("TopK = %+v, want the attack victim first", top)
	}
}

func TestAlertHysteresis(t *testing.T) {
	// One excursion must produce exactly one alert, not one per check.
	m := mustMonitor(t, testConfig(11))
	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 5000, Seed: 12}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, attack)
	count := 0
	for _, a := range m.Alerts() {
		if a.Dest == 443 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("victim alerted %d times during one excursion, want 1", count)
	}
}

func TestAlertCallback(t *testing.T) {
	var got []Alert
	cfg := testConfig(13)
	m, err := New(cfg, func(a Alert) { got = append(got, a) })
	if err != nil {
		t.Fatal(err)
	}
	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 2000, Seed: 14}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, attack)
	if len(got) != len(m.Alerts()) {
		t.Fatalf("callback saw %d alerts, stored %d", len(got), len(m.Alerts()))
	}
	if len(got) == 0 {
		t.Fatal("callback never invoked")
	}
}

func TestBaselineSuppressesSteadyTraffic(t *testing.T) {
	// A destination with persistently moderate half-open counts (e.g. a
	// busy server with some client churn) must not alert forever: the
	// EWMA baseline absorbs it. We verify the baseline actually grows.
	cfg := testConfig(15)
	cfg.MinFrequency = 100 // above the ~30-60 oscillating population
	cfg.CheckInterval = 100
	m := mustMonitor(t, cfg)
	// A steady half-open population of ~30: each round opens 30 new
	// connections and completes the previous round's 30.
	for round := uint32(0); round < 30; round++ {
		for i := uint32(0); i < 30; i++ {
			m.Update(round*100+i, 99, 1)
		}
		if round > 0 {
			for i := uint32(0); i < 30; i++ {
				m.Update((round-1)*100+i, 99, -1)
			}
		}
	}
	if len(m.Alerts()) != 0 {
		t.Fatalf("steady sub-threshold traffic alerted: %+v", m.Alerts())
	}
	if m.baseline[99] == 0 {
		t.Fatal("baseline profile never learned the steady destination")
	}
}

func TestCollectorMergesMonitors(t *testing.T) {
	sketchCfg := dcs.Config{Buckets: 256, Seed: 21}
	mkMonitor := func() *Monitor {
		m, err := New(Config{Sketch: sketchCfg}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	edge1, edge2 := mkMonitor(), mkMonitor()

	// The attack is spread over two ingress points: each edge sees only
	// half the zombies — the collector sees them all.
	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 400, Seed: 22}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range attack {
		if i%2 == 0 {
			edge1.Update(u.Src, u.Dst, int64(u.Delta))
		} else {
			edge2.Update(u.Src, u.Dst, int64(u.Delta))
		}
	}

	col, err := NewCollector(sketchCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Gather(edge1, edge2); err != nil {
		t.Fatal(err)
	}
	top := col.TopK(1)
	if len(top) != 1 || top[0].Dest != 443 {
		t.Fatalf("collector TopK = %+v, want dest 443", top)
	}
	if top[0].F < 300 || top[0].F > 500 {
		t.Fatalf("collector estimate %d, want ~400 (full attack, not half)", top[0].F)
	}
}

func TestCollectorRejectsIncompatible(t *testing.T) {
	col, err := NewCollector(dcs.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Sketch: dcs.Config{Seed: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Gather(m); err == nil {
		t.Fatal("collector merged a sketch with a different seed")
	}
}

func TestAlertsReturnsCopy(t *testing.T) {
	m := mustMonitor(t, testConfig(23))
	attack, err := (stream.SYNFlood{Victim: 1, Zombies: 2000, Seed: 24}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, attack)
	a := m.Alerts()
	if len(a) == 0 {
		t.Fatal("no alerts")
	}
	a[0].Dest = 12345
	if m.Alerts()[0].Dest == 12345 {
		t.Fatal("Alerts must return a copy")
	}
}
