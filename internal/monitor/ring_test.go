package monitor

import (
	"strings"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/telemetry"
)

// ringConfig is a monitor tuned so every new destination alerts on its
// first check: check every update, no frequency floor beyond 1, and a
// 4-slot alert ring.
func ringConfig() Config {
	return Config{
		Sketch:          dcs.Config{Levels: 8, Tables: 2, Buckets: 64, Seed: 11},
		K:               32,
		CheckInterval:   1,
		ThresholdFactor: 2,
		MinFrequency:    1,
		MaxAlerts:       4,
	}
}

// TestAlertRingBounded is the regression test for unbounded Monitor.alerts
// growth: raising far more alerts than MaxAlerts must keep the retained
// slice at MaxAlerts, count the evictions, and keep the retained window the
// most recent alerts in chronological order.
func TestAlertRingBounded(t *testing.T) {
	m, err := New(ringConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const dests = 20
	for d := uint32(1); d <= dests; d++ {
		m.Update(100+d, d, 1)
	}
	st := m.AlertStats()
	if st.Raised != dests {
		t.Fatalf("Raised = %d, want %d", st.Raised, dests)
	}
	if st.Retained != 4 {
		t.Fatalf("Retained = %d, want 4", st.Retained)
	}
	if st.Dropped != dests-4 {
		t.Fatalf("Dropped = %d, want %d", st.Dropped, dests-4)
	}
	if st.Suppressed == 0 {
		t.Fatal("no suppressed observations despite sustained excursions")
	}
	alerts := m.Alerts()
	if len(alerts) != 4 {
		t.Fatalf("len(Alerts()) = %d, want 4", len(alerts))
	}
	for i := 1; i < len(alerts); i++ {
		if alerts[i].AtUpdate < alerts[i-1].AtUpdate {
			t.Fatalf("alerts out of order: %+v before %+v", alerts[i-1], alerts[i])
		}
	}
	if newest := alerts[len(alerts)-1].Dest; newest != dests {
		t.Fatalf("newest retained alert is dest %d, want %d", newest, dests)
	}
}

func TestMaxAlertsDefaultAndValidation(t *testing.T) {
	m, err := New(Config{Sketch: dcs.Config{Levels: 4, Tables: 1, Buckets: 16}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().MaxAlerts; got != DefaultMaxAlerts {
		t.Fatalf("default MaxAlerts = %d, want %d", got, DefaultMaxAlerts)
	}
	cfg := ringConfig()
	cfg.MaxAlerts = -1
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("negative MaxAlerts accepted")
	}
}

// TestMonitorTelemetry registers the monitor on a registry, drives traffic
// through checks, and asserts the exported series reflect the activity.
func TestMonitorTelemetry(t *testing.T) {
	m, err := New(ringConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m.RegisterTelemetry(reg)
	for d := uint32(1); d <= 10; d++ {
		m.Update(100+d, d, 1)
	}
	vals := map[string]float64{}
	var hists = map[string]*telemetry.HistogramSnapshot{}
	for _, s := range reg.Snapshot() {
		vals[s.Name] = s.Value
		hists[s.Name] = s.Hist
	}
	if vals["dcsketch_monitor_checks_total"] != 10 {
		t.Fatalf("checks_total = %v, want 10", vals["dcsketch_monitor_checks_total"])
	}
	if vals["dcsketch_monitor_updates_total"] != 10 {
		t.Fatalf("updates_total = %v", vals["dcsketch_monitor_updates_total"])
	}
	if vals["dcsketch_monitor_alerts_raised_total"] != 10 {
		t.Fatalf("alerts_raised_total = %v", vals["dcsketch_monitor_alerts_raised_total"])
	}
	if vals["dcsketch_sketch_queries_total"] == 0 {
		t.Fatal("sketch queries_total is zero after 10 checks")
	}
	if vals["dcsketch_sketch_decode_singletons_total"] == 0 {
		t.Fatal("decode_singletons_total is zero")
	}
	if vals["dcsketch_sketch_sample_size"] == 0 {
		t.Fatal("sample_size gauge is zero")
	}
	if vals["dcsketch_sketch_levels_nonempty"] == 0 {
		t.Fatal("levels_nonempty gauge is zero")
	}
	for _, name := range []string{"dcsketch_monitor_check_latency_ns", "dcsketch_monitor_query_latency_ns"} {
		h := hists[name]
		if h == nil || h.Count != 10 {
			t.Fatalf("%s count = %+v, want 10 observations", name, h)
		}
	}
	out := string(renderProm(t, reg))
	if err := telemetry.ValidatePrometheusText([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if !strings.Contains(out, "dcsketch_monitor_check_latency_ns_count 10") {
		t.Fatalf("rendered output missing check-latency count:\n%s", out)
	}
}

func renderProm(t *testing.T, reg *telemetry.Registry) []byte {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}
