// Crash-safe snapshot accessors: the monitor's detection state — sketch,
// EWMA baseline/variance profiles, alert hysteresis, update count — can be
// exported into internal/snapshot sections and restored on a fresh monitor
// at boot. The alert and evidence rings are deliberately NOT serialized:
// they are an operator-facing log of a dead process, not state the restarted
// detector needs to be correct, and replaying them would double-report.
package monitor

import (
	"fmt"
	"sort"

	"dcsketch/internal/snapshot"
	"dcsketch/internal/tdcs"
)

// SnapshotSketch serializes the monitor's sketch counters under the monitor
// lock. Inline-mode servers use this directly; sharded servers instead fold
// the pipeline residue with MergeBaseInto and serialize the merged sketch.
func (m *Monitor) SnapshotSketch() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sketch.MarshalBinary()
}

// SnapshotProfile captures the monitor's non-sketch detection state. The
// profile list is sorted by destination so equal states produce identical
// snapshots (byte-stable files diff cleanly across restarts).
func (m *Monitor) SnapshotProfile() snapshot.MonitorState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := snapshot.MonitorState{Updates: m.n}
	if len(m.baseline) > 0 {
		st.Profiles = make([]snapshot.DestProfile, 0, len(m.baseline))
		for dest, mean := range m.baseline {
			st.Profiles = append(st.Profiles, snapshot.DestProfile{
				Dest: dest, Mean: mean, Var: m.basevar[dest],
			})
		}
		sort.Slice(st.Profiles, func(i, j int) bool { return st.Profiles[i].Dest < st.Profiles[j].Dest })
	}
	if len(m.alerting) > 0 {
		st.Alerting = make([]uint32, 0, len(m.alerting))
		for dest := range m.alerting {
			st.Alerting = append(st.Alerting, dest)
		}
		sort.Slice(st.Alerting, func(i, j int) bool { return st.Alerting[i] < st.Alerting[j] })
	}
	return st
}

// RestoreSketch replaces the monitor's sketch with a previously serialized
// one. The encoded sketch must carry the monitor's exact configuration
// (dimensions and seed): restoring a snapshot from a differently configured
// collector would silently break every merge that follows, so it is
// rejected here instead.
func (m *Monitor) RestoreSketch(data []byte) error {
	sk, err := tdcs.UnmarshalBinary(data)
	if err != nil {
		return fmt.Errorf("monitor: restore sketch: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if got, want := sk.Base().Config(), m.sketch.Base().Config(); got != want {
		return fmt.Errorf("monitor: restore sketch config %+v does not match monitor config %+v", got, want)
	}
	m.sketch = sk
	return nil
}

// RestoreProfile replaces the monitor's EWMA profiles, hysteresis set, and
// update count with a previously captured state. Call before the monitor
// starts consuming updates; alert/evidence rings start empty.
func (m *Monitor) RestoreProfile(st snapshot.MonitorState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n = st.Updates
	m.baseline = make(map[uint32]float64, len(st.Profiles))
	m.basevar = make(map[uint32]float64, len(st.Profiles))
	for _, p := range st.Profiles {
		m.baseline[p.Dest] = p.Mean
		m.basevar[p.Dest] = p.Var
	}
	m.alerting = make(map[uint32]bool, len(st.Alerting))
	for _, dest := range st.Alerting {
		m.alerting[dest] = true
	}
}
