package monitor

import (
	"testing"

	"dcsketch/internal/stream"
)

// TestEvidenceCapturedAtOnset drives a SYN flood into a monitor with both
// probes attached and checks that the evidence ledger snapshots the decision
// inputs of the first alert.
func TestEvidenceCapturedAtOnset(t *testing.T) {
	m := mustMonitor(t, testConfig(11))
	var rejects uint64 = 42
	m.SetDecodeRejectProbe(func() uint64 { return rejects })
	m.SetCUSUMProbe(func() (float64, float64, bool) { return 3.5, 2.0, true })

	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 3000, Seed: 12}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, attack)

	evs := m.Evidence()
	if len(evs) == 0 {
		t.Fatal("SYN flood left no evidence")
	}
	ev := evs[0]
	if ev.ID != 1 {
		t.Fatalf("first evidence ID = %d, want 1", ev.ID)
	}
	if ev.Alert.Dest != 443 {
		t.Fatalf("evidence names dest %d, want 443", ev.Alert.Dest)
	}
	if float64(ev.Alert.Estimated) < ev.Trigger {
		t.Fatalf("estimate %d below recorded trigger %v — decision not reproducible",
			ev.Alert.Estimated, ev.Trigger)
	}
	if len(ev.TopK) == 0 {
		t.Fatal("evidence retained no top-k snapshot")
	}
	foundVictim := false
	for _, e := range ev.TopK {
		if e.Dest == 443 {
			foundVictim = true
		}
	}
	if !foundVictim {
		t.Fatal("top-k snapshot does not contain the victim")
	}
	if ev.Health.Query.Queries == 0 {
		t.Fatal("sketch-health snapshot is empty")
	}
	if ev.CUSUMValue != 3.5 || ev.CUSUMThreshold != 2.0 || !ev.CUSUMAlarm {
		t.Fatalf("CUSUM probe not sampled: %+v", ev)
	}
	if ev.DecodeRejects != 42 {
		t.Fatalf("decode-reject probe not sampled: got %d", ev.DecodeRejects)
	}

	got, ok := m.EvidenceByID(ev.ID)
	if !ok || got.Alert.Dest != ev.Alert.Dest {
		t.Fatalf("EvidenceByID(%d) = %+v, %v", ev.ID, got, ok)
	}
	if _, ok := m.EvidenceByID(999999); ok {
		t.Fatal("EvidenceByID invented an entry")
	}

	// Evidence and alerts must agree one-to-one at onset.
	stats := m.AlertStats()
	if uint64(len(evs)) != stats.Raised && stats.Raised <= uint64(m.Config().MaxEvidence) {
		t.Fatalf("evidence entries = %d, alerts raised = %d", len(evs), stats.Raised)
	}
}

// TestEvidenceRingEvictsOldest overflows a capacity-2 ledger and checks the
// oldest entry goes first while IDs stay stable.
func TestEvidenceRingEvictsOldest(t *testing.T) {
	cfg := testConfig(13)
	cfg.MaxEvidence = 2
	m := mustMonitor(t, cfg)

	// Three successive floods against distinct victims, each separated by
	// enough idle checks that hysteresis re-arms between excursions.
	for i, victim := range []uint32{1001, 1002, 1003} {
		attack, err := (stream.SYNFlood{Victim: victim, Zombies: 2000, Seed: uint64(20 + i)}).Updates()
		if err != nil {
			t.Fatal(err)
		}
		drive(m, attack)
		// Tear the flood down so the excursion ends and the next victim
		// triggers a fresh onset.
		for _, u := range attack {
			m.Update(u.Src, u.Dst, -int64(u.Delta))
		}
		for j := 0; j < 4*cfg.CheckInterval; j++ {
			m.Update(uint32(j), 9999, 1)
			m.Update(uint32(j), 9999, -1)
		}
	}

	evs := m.Evidence()
	if len(evs) != 2 {
		t.Fatalf("ledger retains %d entries, want capacity 2", len(evs))
	}
	if evs[0].ID >= evs[1].ID {
		t.Fatalf("ledger not oldest-first: IDs %d, %d", evs[0].ID, evs[1].ID)
	}
	raised := m.AlertStats().Raised
	if raised < 3 {
		t.Fatalf("expected at least 3 onsets, got %d", raised)
	}
	if evs[1].ID != raised {
		t.Fatalf("newest evidence ID = %d, want last onset %d", evs[1].ID, raised)
	}
	// The earliest entries were evicted and must be unreachable by ID.
	if _, ok := m.EvidenceByID(evs[0].ID - 1); ok && evs[0].ID > 1 {
		t.Fatal("evicted evidence still reachable by ID")
	}
}

// TestBaselineVarianceLearns pins the EWMA variance side-channel: a steady
// signal keeps variance near zero, a jittery one grows it.
func TestBaselineVarianceLearns(t *testing.T) {
	cfg := testConfig(17)
	cfg.BaselineAlpha = 0.5
	m := mustMonitor(t, cfg)

	// Steady load on one destination, alternating on another.
	attack, err := (stream.SYNFlood{Victim: 80, Zombies: 50, Seed: 30}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	drive(m, attack)
	for i := 0; i < 8*cfg.CheckInterval; i++ {
		m.Update(uint32(i%50), 80, 1)
		m.Update(uint32(i%50), 80, -1)
	}
	m.mu.Lock()
	varSteady := m.basevar[80]
	m.mu.Unlock()
	if varSteady < 0 {
		t.Fatalf("variance went negative: %v", varSteady)
	}
}
