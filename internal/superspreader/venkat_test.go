package superspreader

import (
	"math"
	"testing"

	"dcsketch/internal/dcs"
)

func TestKSuperspreaderValidation(t *testing.T) {
	if _, err := NewKSuperspreader(0, 2, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewKSuperspreader(10, 0, 1); err == nil {
		t.Fatal("c=0 accepted")
	}
}

func TestKSuperspreaderDetectsHeavySource(t *testing.T) {
	v, err := NewKSuperspreader(100, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Scanner contacts 1000 distinct destinations (10x the threshold);
	// normal hosts contact 5.
	for d := uint32(0); d < 1000; d++ {
		v.Observe(42, d)
	}
	for src := uint32(100); src < 300; src++ {
		for d := uint32(0); d < 5; d++ {
			v.Observe(src, 70000+d)
		}
	}
	report := v.Report()
	if len(report) == 0 || report[0].Src != 42 {
		t.Fatalf("Report = %+v, want scanner 42 first", report)
	}
	if math.Abs(float64(report[0].F)-1000)/1000 > 0.5 {
		t.Fatalf("fan-out estimate %d, want ~1000", report[0].F)
	}
	for _, e := range report {
		if e.Src >= 100 && e.Src < 300 {
			t.Fatalf("normal host %d reported as superspreader", e.Src)
		}
	}
}

func TestKSuperspreaderDuplicatesCoherent(t *testing.T) {
	// Repeated contacts to the same destination make one retention
	// decision, so they do not inflate the estimate.
	v, err := NewKSuperspreader(10, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 100; rep++ {
		for d := uint32(0); d < 3; d++ {
			v.Observe(7, d)
		}
	}
	if got := v.RetainedPairs(); got > 3 {
		t.Fatalf("retained %d pairs for 3 distinct contacts", got)
	}
	if report := v.Report(); len(report) != 0 {
		t.Fatalf("3-destination source reported as 10-superspreader: %+v", report)
	}
}

// TestThresholdBlindnessVsSketch captures the paper's §1 contrast: the
// one-level filter needs its threshold k chosen in advance — a scanner
// operating below it is invisible — while the sketch's top-k needs no
// threshold at all.
func TestThresholdBlindnessVsSketch(t *testing.T) {
	// Operator guessed k = 500; the actual scanner fans out to 120.
	v, err := NewKSuperspreader(500, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := New(dcs.Config{Buckets: 256, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 120; d++ {
		v.Observe(42, 0xac100000+d)
		sk.Update(42, 0xac100000+d, 1)
	}
	for src := uint32(1); src <= 50; src++ {
		for d := uint32(0); d < 3; d++ {
			v.Observe(src, d)
			sk.Update(src, d, 1)
		}
	}
	if report := v.Report(); len(report) != 0 {
		t.Fatalf("filter with k=500 reported %+v; expected blindness below threshold", report)
	}
	top := sk.TopK(1)
	if len(top) != 1 || top[0].Src != 42 {
		t.Fatalf("sketch top-1 = %+v, want the scanner regardless of thresholds", top)
	}
}

func TestKSuperspreaderProbClamped(t *testing.T) {
	// c > k implies retention probability 1: everything kept, exact.
	v, err := NewKSuperspreader(2, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 20; d++ {
		v.Observe(1, d)
	}
	report := v.Report()
	if len(report) != 1 || report[0].F != 20 {
		t.Fatalf("Report = %+v, want exact fan-out 20", report)
	}
}
