package superspreader

import (
	"testing"

	"dcsketch/internal/dcs"
)

func TestPortScannerDetected(t *testing.T) {
	tr, err := New(dcs.Config{Buckets: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Scanner 99 probes 200 distinct destinations; normal hosts touch 3.
	for d := uint32(0); d < 200; d++ {
		tr.Update(99, 0x0a000000+d, 1)
	}
	for src := uint32(1); src <= 20; src++ {
		for d := uint32(0); d < 3; d++ {
			tr.Update(src, 0x0b000000+d, 1)
		}
	}
	top := tr.TopK(1)
	if len(top) != 1 || top[0].Src != 99 {
		t.Fatalf("TopK = %+v, want scanner 99", top)
	}
	if top[0].F < 150 || top[0].F > 250 {
		t.Fatalf("scanner fan-out estimate %d, want ~200", top[0].F)
	}
}

func TestCompletedConnectionsRemoved(t *testing.T) {
	tr, err := New(dcs.Config{Buckets: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A busy proxy contacts 100 dests but all connections complete.
	for d := uint32(0); d < 100; d++ {
		tr.Update(7, d, 1)
	}
	for d := uint32(0); d < 100; d++ {
		tr.Update(7, d, -1)
	}
	// A scanner leaves 50 half-open probes.
	for d := uint32(0); d < 50; d++ {
		tr.Update(9, 1000+d, 1)
	}
	top := tr.TopK(1)
	if len(top) != 1 || top[0].Src != 9 {
		t.Fatalf("TopK = %+v, want scanner 9 (proxy's flows completed)", top)
	}
}

func TestThreshold(t *testing.T) {
	tr, err := New(dcs.Config{Buckets: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 40; d++ {
		tr.Update(1, d, 1)
	}
	for d := uint32(0); d < 5; d++ {
		tr.Update(2, 100+d, 1)
	}
	got := tr.Threshold(20)
	if len(got) != 1 || got[0].Src != 1 {
		t.Fatalf("Threshold(20) = %+v, want only source 1", got)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(dcs.Config{Buckets: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAccounting(t *testing.T) {
	tr, err := New(dcs.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr.Update(1, 2, 1)
	tr.Update(1, 3, 1)
	if tr.Updates() != 2 {
		t.Fatalf("Updates = %d, want 2", tr.Updates())
	}
	if tr.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}
