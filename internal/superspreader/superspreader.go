// Package superspreader applies the Distinct-Count Sketch to the dual
// problem the paper mentions in §1 (footnote 1): identifying *sources* that
// contact many distinct destinations — the signature of port scans and worm
// propagation. It is the same top-k distinct-frequency machinery with the
// roles of the pair reversed, and unlike the k-superspreaders algorithms of
// Venkataraman et al. it needs no a-priori threshold k on the number of
// contacted destinations.
package superspreader

import (
	"dcsketch/internal/dcs"
	"dcsketch/internal/tdcs"
)

// Estimate is a source with its estimated distinct-destination count.
type Estimate struct {
	Src uint32
	F   int64
}

// Tracker tracks the top-k sources by the number of distinct destinations
// they contact, with full deletion support (e.g. remove scans that complete
// legitimate handshakes).
type Tracker struct {
	sketch *tdcs.Sketch
}

// New builds a tracker; cfg has the same semantics as the sketch config.
func New(cfg dcs.Config) (*Tracker, error) {
	s, err := tdcs.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Tracker{sketch: s}, nil
}

// Update observes a flow update. It satisfies the same Sink shape as the
// destination-oriented trackers, so the one monitored stream can feed both.
func (t *Tracker) Update(src, dst uint32, delta int64) {
	// Reverse the pair: the sketch's "destination" slot carries the
	// source whose fan-out we are counting.
	t.sketch.Update(dst, src, delta)
}

// TopK returns the k sources contacting the most distinct destinations.
func (t *Tracker) TopK(k int) []Estimate {
	ests := t.sketch.TopK(k)
	out := make([]Estimate, len(ests))
	for i, e := range ests {
		out[i] = Estimate{Src: e.Dest, F: e.F}
	}
	return out
}

// Threshold returns all sources contacting at least tau distinct
// destinations.
func (t *Tracker) Threshold(tau int64) []Estimate {
	ests := t.sketch.Threshold(tau)
	out := make([]Estimate, len(ests))
	for i, e := range ests {
		out[i] = Estimate{Src: e.Dest, F: e.F}
	}
	return out
}

// Updates returns the number of processed updates.
func (t *Tracker) Updates() uint64 { return t.sketch.Updates() }

// SizeBytes returns the tracker's memory footprint.
func (t *Tracker) SizeBytes() int { return t.sketch.SizeBytes() }
