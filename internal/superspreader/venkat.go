package superspreader

import (
	"fmt"
	"sort"

	"dcsketch/internal/hashing"
)

// This file implements the one-level filtering algorithm of Venkataraman,
// Song, Gibbons and Blum ("New Streaming Algorithms for Superspreader
// Detection", NDSS 2005) as a comparison baseline — the prior work the paper
// positions itself against in §1: it detects sources contacting more than a
// *pre-chosen* threshold k of distinct destinations, whereas the
// Distinct-Count Sketch tracks the top-k without any threshold and survives
// deletions.
//
// One-level filtering: each distinct (src,dst) pair is retained with
// probability p = c/k (decided by a hash of the pair, so duplicates make one
// coherent decision); a source is reported when more than a fixed number of
// its pairs were retained. Insert-only by construction — a deletion can only
// be honored for retained pairs, and the decision threshold has no way to
// account for completions it never sampled.

// KSuperspreader is the one-level filtering detector.
type KSuperspreader struct {
	k int
	// prob is the retention probability c/k.
	prob float64
	// reportAt is the retained-pair count that triggers a report.
	reportAt int

	pairHash *hashing.Tab64
	// retained maps sources to their set of retained destination pairs.
	retained map[uint32]map[uint64]struct{}
}

// NewKSuperspreader builds a detector for the fan-out threshold k with
// oversampling factor c (Venkataraman et al. suggest small constants; c
// trades memory for confidence). The detector reports sources whose
// estimated fan-out exceeds ~k.
func NewKSuperspreader(k int, c float64, seed uint64) (*KSuperspreader, error) {
	if k < 1 {
		return nil, fmt.Errorf("superspreader: k = %d, must be >= 1", k)
	}
	if c <= 0 {
		return nil, fmt.Errorf("superspreader: c = %v, must be positive", c)
	}
	prob := c / float64(k)
	if prob > 1 {
		prob = 1
	}
	reportAt := int(c)
	if reportAt < 1 {
		reportAt = 1
	}
	return &KSuperspreader{
		k:        k,
		prob:     prob,
		reportAt: reportAt,
		pairHash: hashing.NewTab64(seed),
		retained: make(map[uint32]map[uint64]struct{}),
	}, nil
}

// Observe processes one (src, dst) contact. Deltas are ignored: the
// published algorithm is insert-only (the structural contrast with the
// sketch).
func (v *KSuperspreader) Observe(src, dst uint32) {
	key := hashing.PairKey(src, dst)
	// Coherent coin flip: hash the pair to [0,1).
	u := float64(v.pairHash.Hash(key)>>11) / (1 << 53)
	if u >= v.prob {
		return
	}
	set := v.retained[src]
	if set == nil {
		set = make(map[uint64]struct{})
		v.retained[src] = set
	}
	set[key] = struct{}{}
}

// Report returns the sources whose retained-pair count crossed the report
// threshold, i.e. the claimed k-superspreaders, sorted by descending
// estimated fan-out then ascending source.
func (v *KSuperspreader) Report() []Estimate {
	var out []Estimate
	for src, set := range v.retained {
		if len(set) >= v.reportAt {
			out = append(out, Estimate{
				Src: src,
				F:   int64(float64(len(set)) / v.prob),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].F != out[j].F {
			return out[i].F > out[j].F
		}
		return out[i].Src < out[j].Src
	})
	return out
}

// RetainedPairs returns the total number of stored pairs (the memory
// footprint driver).
func (v *KSuperspreader) RetainedPairs() int {
	n := 0
	for _, set := range v.retained {
		n += len(set)
	}
	return n
}
