// Package vec provides the 64-lane masked-add primitives behind the
// Distinct-Count Sketch update kernel (internal/dcs).
//
// A count-signature update adds delta to bit-location counter j exactly when
// bit j of the pair key is set (paper §3, Fig. 2) — a masked 64-lane add
// into the flat counter array. That operation is the measured hot spot of
// the Table-2 update cost (~80% of per-update cycles), and it vectorizes
// perfectly: the addend vector
//
//	add[j] = delta & -((key >> j) & 1)
//
// depends only on (key, delta), so it is built once per update and applied
// to each of the r second-level tables the key maps to with a plain lane-wise
// add. On amd64 with AVX2 both steps run four lanes per instruction; every
// other platform uses the portable loops below, which are semantically
// identical (the package test proves it lane-for-lane).
//
// The split into BuildMaskedAddends + AddInt64Lanes is deliberate: building
// the addends costs one pass of mask arithmetic, while applying them costs a
// pure load-add-store sweep, so the mask work is amortized across the r
// tables of one update (and across nothing else — the addends are scratch,
// valid until the next build).
package vec

// Lanes is the number of int64 lanes the kernels operate on: one per bit of
// the 64-bit pair-key domain (sig.KeyBits).
const Lanes = 64

// Fast reports whether the lane kernels are backed by SIMD on this CPU.
// Query-only (telemetry, tests); both paths compute identical results.
func Fast() bool { return fastLanes }

// buildMaskedAddendsGeneric is the portable addend builder: add[j] = delta
// when bit j of key is set, else 0, branch-free.
//
//lint:allocfree
//lint:bce
//lint:inline
func buildMaskedAddendsGeneric(add *[Lanes]int64, key uint64, delta int64) {
	for j := 0; j < Lanes; j += 4 {
		k := key >> uint(j)
		add[j] = delta & -int64(k&1)
		add[j+1] = delta & -int64((k>>1)&1)
		add[j+2] = delta & -int64((k>>2)&1)
		add[j+3] = delta & -int64((k>>3)&1)
	}
}

// addInt64LanesGeneric is the portable lane-wise add: dst[j] += add[j].
//
//lint:allocfree
//lint:bce
//lint:inline
func addInt64LanesGeneric(dst, add *[Lanes]int64) {
	for j := 0; j < Lanes; j += 4 {
		dst[j] += add[j]
		dst[j+1] += add[j+1]
		dst[j+2] += add[j+2]
		dst[j+3] += add[j+3]
	}
}
