//go:build amd64

package vec

import (
	"math/rand"
	"os"
	"testing"
)

// The tests in this file call the assembly entry points directly — not
// through the fastLanes dispatchers — so the asm bodies are differentially
// verified against the reference even when DCSKETCH_FORCE_GENERIC pins the
// dispatchers to the portable kernels. sketchlint's asmabi analyzer requires
// every asm stub to be exercised by name somewhere in the package tests.

func TestBuildAddendsAVX2MatchesReference(t *testing.T) {
	if !detectAVX2() {
		t.Skip("CPU/OS does not support AVX2")
	}
	rng := rand.New(rand.NewSource(17))
	for _, key := range testKeys(rng, 200) {
		for _, delta := range []int64{1, -1, 5, -5, 1 << 40, -(1 << 40)} {
			want := refAddends(key, delta)
			var got [Lanes]int64
			buildAddendsAVX2(&got, key, delta)
			if got != want {
				t.Fatalf("buildAddendsAVX2(key=%#x, delta=%d) = %v, want %v", key, delta, got, want)
			}
		}
	}
}

func TestAddLanes64AVX2MatchesGeneric(t *testing.T) {
	if !detectAVX2() {
		t.Skip("CPU/OS does not support AVX2")
	}
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 500; iter++ {
		var dstAsm, dstGen, add [Lanes]int64
		for j := range add {
			dstAsm[j] = rng.Int63() - rng.Int63()
			dstGen[j] = dstAsm[j]
			add[j] = rng.Int63() - rng.Int63()
		}
		addLanes64AVX2(&dstAsm, &add)
		addInt64LanesGeneric(&dstGen, &add)
		if dstAsm != dstGen {
			t.Fatalf("iter %d: addLanes64AVX2 diverged from the generic kernel", iter)
		}
	}
}

func TestCPUIDLeafZero(t *testing.T) {
	eax, ebx, ecx, edx := cpuid(0, 0)
	if eax == 0 {
		t.Fatal("cpuid(0,0) reported zero as the maximum basic leaf")
	}
	// EBX:EDX:ECX spell the vendor string; all zero means the instruction
	// did not execute (impossible on amd64, where CPUID always exists).
	if ebx == 0 && ecx == 0 && edx == 0 {
		t.Fatal("cpuid(0,0) returned an empty vendor identification string")
	}
}

func TestXgetbv0(t *testing.T) {
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		t.Skip("OSXSAVE not enabled; XGETBV would fault")
	}
	xcr0 := xgetbv0()
	// The architecture requires XCR0 bit 0 (x87 state) to be set.
	if xcr0&1 == 0 {
		t.Fatalf("xgetbv0() = %#x: x87 state bit must always be set in XCR0", xcr0)
	}
	if detectAVX2() && xcr0&0x6 != 0x6 {
		t.Fatalf("xgetbv0() = %#x: detectAVX2 true but XMM/YMM state bits are clear", xcr0)
	}
}

// TestForceGenericPinsFallback asserts the DCSKETCH_FORCE_GENERIC gate: when
// CI re-runs this package with the variable set, the dispatchers must report
// the portable backend no matter what the CPU supports.
func TestForceGenericPinsFallback(t *testing.T) {
	if os.Getenv("DCSKETCH_FORCE_GENERIC") == "" {
		t.Skip("DCSKETCH_FORCE_GENERIC not set; the force-generic CI pass runs this assertion")
	}
	if Fast() {
		t.Fatal("DCSKETCH_FORCE_GENERIC is set but vec.Fast() still reports the SIMD backend")
	}
}
