//go:build !amd64

package vec

// No SIMD backend on this architecture; the portable kernels are the only
// implementation, so the dispatchers collapse to direct calls.
const fastLanes = false

// BuildMaskedAddends fills add with the masked addend vector for one update:
// add[j] = delta when bit j of key is set, else 0. The result is applied to
// each of the update's r tables with AddInt64Lanes.
//
//lint:allocfree
func BuildMaskedAddends(add *[Lanes]int64, key uint64, delta int64) {
	buildMaskedAddendsGeneric(add, key, delta)
}

// AddInt64Lanes adds add into dst lane-wise: dst[j] += add[j] for all 64
// lanes. dst and add must not alias unless identical.
//
//lint:allocfree
func AddInt64Lanes(dst, add *[Lanes]int64) {
	addInt64LanesGeneric(dst, add)
}
