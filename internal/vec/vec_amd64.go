//go:build amd64

package vec

import "os"

// fastLanes gates the AVX2 kernels. It is written once by init-time feature
// detection and read-only afterwards, so the hot-path branch predicts
// perfectly and needs no synchronization. Setting DCSKETCH_FORCE_GENERIC to
// any non-empty value pins the portable kernels even on AVX2 hardware — CI
// uses it to run the whole differential and race suite against the generic
// fallback, which otherwise only executes on non-amd64 builders.
var fastLanes = detectAVX2() && os.Getenv("DCSKETCH_FORCE_GENERIC") == ""

// BuildMaskedAddends fills add with the masked addend vector for one update:
// add[j] = delta when bit j of key is set, else 0. The result is applied to
// each of the update's r tables with AddInt64Lanes.
//
//lint:allocfree
func BuildMaskedAddends(add *[Lanes]int64, key uint64, delta int64) {
	if fastLanes {
		buildAddendsAVX2(add, key, delta)
		return
	}
	buildMaskedAddendsGeneric(add, key, delta)
}

// AddInt64Lanes adds add into dst lane-wise: dst[j] += add[j] for all 64
// lanes. dst and add must not alias unless identical.
//
//lint:allocfree
func AddInt64Lanes(dst, add *[Lanes]int64) {
	if fastLanes {
		addLanes64AVX2(dst, add)
		return
	}
	addInt64LanesGeneric(dst, add)
}

// buildAddendsAVX2 is the AVX2 addend builder (vec_amd64.s): broadcast
// key/delta, compare against the bit-selector table, mask delta through.
// Only call when fastLanes is true.
//
//lint:allocfree
//go:noescape
func buildAddendsAVX2(add *[Lanes]int64, key uint64, delta int64)

// addLanes64AVX2 is the AVX2 lane-wise add (vec_amd64.s): sixteen 4-lane
// load/add/store groups. Only call when fastLanes is true.
//
//lint:allocfree
//go:noescape
func addLanes64AVX2(dst, add *[Lanes]int64)

// cpuid executes the CPUID instruction for the given leaf/subleaf
// (vec_amd64.s). Feature detection only; never on the hot path.
//
//lint:allocfree
//go:noescape
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0 (vec_amd64.s). Only valid
// when CPUID reports OSXSAVE; feature detection only.
//
//lint:allocfree
//go:noescape
func xgetbv0() uint64

// detectAVX2 reports whether the CPU and OS together support AVX2: the
// feature bit itself (leaf 7 EBX bit 5), AVX + OSXSAVE (leaf 1 ECX bits
// 28/27), and OS-enabled XMM+YMM state in XCR0 (bits 1 and 2). Checking
// XCR0 matters: a kernel that does not context-switch YMM state would
// corrupt registers across preemption even though the CPU has the ALUs.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xgetbv0()&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
