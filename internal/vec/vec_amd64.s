//go:build amd64

#include "textflag.h"

// bitsel<> holds the 64 single-bit selector masks 1<<0 .. 1<<63, one qword
// per lane, so VPAND+VPCMPEQQ against a broadcast key turns "is bit j set"
// into an all-ones/all-zeros lane mask four lanes at a time.
DATA bitsel<>+0x000(SB)/8, $0x0000000000000001
DATA bitsel<>+0x008(SB)/8, $0x0000000000000002
DATA bitsel<>+0x010(SB)/8, $0x0000000000000004
DATA bitsel<>+0x018(SB)/8, $0x0000000000000008
DATA bitsel<>+0x020(SB)/8, $0x0000000000000010
DATA bitsel<>+0x028(SB)/8, $0x0000000000000020
DATA bitsel<>+0x030(SB)/8, $0x0000000000000040
DATA bitsel<>+0x038(SB)/8, $0x0000000000000080
DATA bitsel<>+0x040(SB)/8, $0x0000000000000100
DATA bitsel<>+0x048(SB)/8, $0x0000000000000200
DATA bitsel<>+0x050(SB)/8, $0x0000000000000400
DATA bitsel<>+0x058(SB)/8, $0x0000000000000800
DATA bitsel<>+0x060(SB)/8, $0x0000000000001000
DATA bitsel<>+0x068(SB)/8, $0x0000000000002000
DATA bitsel<>+0x070(SB)/8, $0x0000000000004000
DATA bitsel<>+0x078(SB)/8, $0x0000000000008000
DATA bitsel<>+0x080(SB)/8, $0x0000000000010000
DATA bitsel<>+0x088(SB)/8, $0x0000000000020000
DATA bitsel<>+0x090(SB)/8, $0x0000000000040000
DATA bitsel<>+0x098(SB)/8, $0x0000000000080000
DATA bitsel<>+0x0a0(SB)/8, $0x0000000000100000
DATA bitsel<>+0x0a8(SB)/8, $0x0000000000200000
DATA bitsel<>+0x0b0(SB)/8, $0x0000000000400000
DATA bitsel<>+0x0b8(SB)/8, $0x0000000000800000
DATA bitsel<>+0x0c0(SB)/8, $0x0000000001000000
DATA bitsel<>+0x0c8(SB)/8, $0x0000000002000000
DATA bitsel<>+0x0d0(SB)/8, $0x0000000004000000
DATA bitsel<>+0x0d8(SB)/8, $0x0000000008000000
DATA bitsel<>+0x0e0(SB)/8, $0x0000000010000000
DATA bitsel<>+0x0e8(SB)/8, $0x0000000020000000
DATA bitsel<>+0x0f0(SB)/8, $0x0000000040000000
DATA bitsel<>+0x0f8(SB)/8, $0x0000000080000000
DATA bitsel<>+0x100(SB)/8, $0x0000000100000000
DATA bitsel<>+0x108(SB)/8, $0x0000000200000000
DATA bitsel<>+0x110(SB)/8, $0x0000000400000000
DATA bitsel<>+0x118(SB)/8, $0x0000000800000000
DATA bitsel<>+0x120(SB)/8, $0x0000001000000000
DATA bitsel<>+0x128(SB)/8, $0x0000002000000000
DATA bitsel<>+0x130(SB)/8, $0x0000004000000000
DATA bitsel<>+0x138(SB)/8, $0x0000008000000000
DATA bitsel<>+0x140(SB)/8, $0x0000010000000000
DATA bitsel<>+0x148(SB)/8, $0x0000020000000000
DATA bitsel<>+0x150(SB)/8, $0x0000040000000000
DATA bitsel<>+0x158(SB)/8, $0x0000080000000000
DATA bitsel<>+0x160(SB)/8, $0x0000100000000000
DATA bitsel<>+0x168(SB)/8, $0x0000200000000000
DATA bitsel<>+0x170(SB)/8, $0x0000400000000000
DATA bitsel<>+0x178(SB)/8, $0x0000800000000000
DATA bitsel<>+0x180(SB)/8, $0x0001000000000000
DATA bitsel<>+0x188(SB)/8, $0x0002000000000000
DATA bitsel<>+0x190(SB)/8, $0x0004000000000000
DATA bitsel<>+0x198(SB)/8, $0x0008000000000000
DATA bitsel<>+0x1a0(SB)/8, $0x0010000000000000
DATA bitsel<>+0x1a8(SB)/8, $0x0020000000000000
DATA bitsel<>+0x1b0(SB)/8, $0x0040000000000000
DATA bitsel<>+0x1b8(SB)/8, $0x0080000000000000
DATA bitsel<>+0x1c0(SB)/8, $0x0100000000000000
DATA bitsel<>+0x1c8(SB)/8, $0x0200000000000000
DATA bitsel<>+0x1d0(SB)/8, $0x0400000000000000
DATA bitsel<>+0x1d8(SB)/8, $0x0800000000000000
DATA bitsel<>+0x1e0(SB)/8, $0x1000000000000000
DATA bitsel<>+0x1e8(SB)/8, $0x2000000000000000
DATA bitsel<>+0x1f0(SB)/8, $0x4000000000000000
DATA bitsel<>+0x1f8(SB)/8, $0x8000000000000000
GLOBL bitsel<>(SB), RODATA|NOPTR, $512

// func buildAddendsAVX2(add *[64]int64, key uint64, delta int64)
//
// add[j] = delta & -((key>>j)&1), four lanes per iteration:
//   Y2 = bitsel[j..j+3]          (the four selector bits)
//   Y3 = (key & Y2) == Y2 ? ~0 : 0   per lane
//   Y3 &= delta
TEXT ·buildAddendsAVX2(SB), NOSPLIT, $0-24
	MOVQ add+0(FP), DI
	// Broadcast straight from the argument slots: VPBROADCASTQ m64 avoids a
	// legacy-SSE MOVQ GP->XMM, which would mix VEX and non-VEX encodings and
	// stall on AVX-SSE transition penalties.
	VPBROADCASTQ key+8(FP), Y0   // key in all lanes
	VPBROADCASTQ delta+16(FP), Y1 // delta in all lanes
	LEAQ bitsel<>(SB), SI
	MOVQ $4, DX
	XORQ BX, BX
loop:
	VMOVDQU (SI)(BX*1), Y2
	VMOVDQU 32(SI)(BX*1), Y4
	VMOVDQU 64(SI)(BX*1), Y6
	VMOVDQU 96(SI)(BX*1), Y8
	VPAND Y0, Y2, Y3
	VPAND Y0, Y4, Y5
	VPAND Y0, Y6, Y7
	VPAND Y0, Y8, Y9
	VPCMPEQQ Y2, Y3, Y3
	VPCMPEQQ Y4, Y5, Y5
	VPCMPEQQ Y6, Y7, Y7
	VPCMPEQQ Y8, Y9, Y9
	VPAND Y1, Y3, Y3
	VPAND Y1, Y5, Y5
	VPAND Y1, Y7, Y7
	VPAND Y1, Y9, Y9
	VMOVDQU Y3, (DI)(BX*1)
	VMOVDQU Y5, 32(DI)(BX*1)
	VMOVDQU Y7, 64(DI)(BX*1)
	VMOVDQU Y9, 96(DI)(BX*1)
	ADDQ $128, BX
	DECQ DX
	JNZ loop
	VZEROUPPER
	RET

// func addLanes64AVX2(dst, add *[64]int64)
//
// dst[j] += add[j] for j in [0,64): sixteen 4-lane VPADDQ groups, unrolled
// four groups per iteration.
TEXT ·addLanes64AVX2(SB), NOSPLIT, $0-16
	MOVQ dst+0(FP), DI
	MOVQ add+8(FP), SI
	MOVQ $4, DX
	XORQ BX, BX
loop:
	VMOVDQU (DI)(BX*1), Y0
	VMOVDQU 32(DI)(BX*1), Y1
	VMOVDQU 64(DI)(BX*1), Y2
	VMOVDQU 96(DI)(BX*1), Y3
	VPADDQ (SI)(BX*1), Y0, Y0
	VPADDQ 32(SI)(BX*1), Y1, Y1
	VPADDQ 64(SI)(BX*1), Y2, Y2
	VPADDQ 96(SI)(BX*1), Y3, Y3
	VMOVDQU Y0, (DI)(BX*1)
	VMOVDQU Y1, 32(DI)(BX*1)
	VMOVDQU Y2, 64(DI)(BX*1)
	VMOVDQU Y3, 96(DI)(BX*1)
	ADDQ $128, BX
	DECQ DX
	JNZ loop
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	SHLQ $32, DX
	ORQ DX, AX
	MOVQ AX, ret+0(FP)
	RET
