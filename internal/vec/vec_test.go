package vec

import (
	"math/rand"
	"testing"
)

// refAddends is the one-bit-at-a-time reference definition the kernels must
// match: add[j] = delta iff bit j of key is set.
func refAddends(key uint64, delta int64) [Lanes]int64 {
	var add [Lanes]int64
	for j := 0; j < Lanes; j++ {
		if key&(1<<uint(j)) != 0 {
			add[j] = delta
		}
	}
	return add
}

func testKeys(rng *rand.Rand, n int) []uint64 {
	keys := []uint64{0, 1, 1 << 63, ^uint64(0), 0xAAAAAAAAAAAAAAAA, 0x5555555555555555}
	for i := 0; i < n; i++ {
		keys = append(keys, rng.Uint64())
	}
	return keys
}

func TestBuildMaskedAddendsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, key := range testKeys(rng, 200) {
		for _, delta := range []int64{1, -1, 3, -3, 1 << 40, -(1 << 40)} {
			want := refAddends(key, delta)
			var got [Lanes]int64
			BuildMaskedAddends(&got, key, delta)
			if got != want {
				t.Fatalf("BuildMaskedAddends(key=%#x, delta=%d) = %v, want %v", key, delta, got, want)
			}
			var gen [Lanes]int64
			buildMaskedAddendsGeneric(&gen, key, delta)
			if gen != want {
				t.Fatalf("generic builder diverged for key=%#x delta=%d", key, delta)
			}
		}
	}
}

func TestAddInt64LanesMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		var dstFast, dstGen, add [Lanes]int64
		for j := range add {
			dstFast[j] = rng.Int63() - rng.Int63()
			dstGen[j] = dstFast[j]
			add[j] = rng.Int63() - rng.Int63()
		}
		AddInt64Lanes(&dstFast, &add)
		addInt64LanesGeneric(&dstGen, &add)
		if dstFast != dstGen {
			t.Fatalf("iter %d: AddInt64Lanes diverged from generic", iter)
		}
	}
}

// TestBuildThenAddAccumulates drives the two kernels the way the dcs update
// kernel does — build once, apply r times — and checks the accumulated
// counters against scalar accumulation.
func TestBuildThenAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var counters, want [Lanes]int64
	var add [Lanes]int64
	for iter := 0; iter < 300; iter++ {
		key := rng.Uint64()
		delta := int64(1)
		if iter%2 == 1 {
			delta = -1
		}
		BuildMaskedAddends(&add, key, delta)
		for r := 0; r < 3; r++ {
			AddInt64Lanes(&counters, &add)
		}
		for j := 0; j < Lanes; j++ {
			if key&(1<<uint(j)) != 0 {
				want[j] += 3 * delta
			}
		}
	}
	if counters != want {
		t.Fatalf("accumulated counters diverged from scalar reference")
	}
}

func TestFastReportsBackend(t *testing.T) {
	// Fast() must be callable and stable; on amd64 CI machines with AVX2 the
	// asm path is what the other tests above exercised.
	if Fast() != Fast() {
		t.Fatal("Fast() not stable")
	}
	t.Logf("vec.Fast() = %v", Fast())
}

func BenchmarkBuildMaskedAddends(b *testing.B) {
	var add [Lanes]int64
	for i := 0; i < b.N; i++ {
		BuildMaskedAddends(&add, uint64(i)*0x9E3779B97F4A7C15, 1)
	}
}

func BenchmarkAddInt64Lanes(b *testing.B) {
	var dst, add [Lanes]int64
	BuildMaskedAddends(&add, 0xDEADBEEFCAFEF00D, 1)
	for i := 0; i < b.N; i++ {
		AddInt64Lanes(&dst, &add)
	}
}
