package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcsketch/internal/debugapi"
	"dcsketch/internal/tracelog"
)

func writeJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceSubcommand renders a retransmission timeline and checks the
// verdict tells the exactly-once story.
func TestTraceSubcommand(t *testing.T) {
	rec := tracelog.New(tracelog.Options{})
	rec.SetNow(500)
	exp := rec.Acquire(0)
	srv := rec.Acquire(2)
	exp.Record(tracelog.StageExportEnqueue, 9, 4, 100, 1)
	exp.Record(tracelog.StageExportSend, 9, 4, 100, 1)
	exp.Record(tracelog.StageExportCut, 9, 0, 0, 1) // mid-batch kill
	exp.Record(tracelog.StageExportSend, 9, 4, 100, 2)
	srv.Record(tracelog.StageServerDecode, 9, 4, 100, 0)
	srv.Record(tracelog.StageServerApply, 9, 4, 100, 0)
	srv.Record(tracelog.StageServerAck, 9, 4, 0, 4)
	exp.Record(tracelog.StageExportSend, 9, 4, 100, 3) // ack raced the resend
	srv.Record(tracelog.StageServerDup, 9, 4, 0, 4)
	exp.Record(tracelog.StageExportAck, 9, 4, 0, 4)

	// The cut is session-scoped (seq 0), so fold it in by hand the way the
	// chaos harness does: trace the batch, then merge cut events.
	evs := rec.Events(nil)
	var kept []tracelog.Event
	for _, ev := range evs {
		if ev.Session == 9 {
			kept = append(kept, ev)
		}
	}
	dump := tracelog.NewDump(9, 4, rec.WallBase(), kept)
	path := writeJSON(t, dump)

	var out strings.Builder
	if err := run([]string{"trace", "-f", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"session=9 seq=4",
		"export-send",
		"export-cut",
		"server-dup",
		"delivered exactly once after 3 send attempts",
		"1 replays suppressed by dedup",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q:\n%s", want, got)
		}
	}
}

// TestTraceSubcommandEmpty reports a useful message for an unseen batch.
func TestTraceSubcommandEmpty(t *testing.T) {
	path := writeJSON(t, tracelog.Dump{Session: 1, Seq: 2})
	var out strings.Builder
	if err := run([]string{"trace", "-f", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no recorded events") {
		t.Fatalf("empty dump not explained:\n%s", out.String())
	}
}

// TestExplainSubcommand renders both the single-entry and list shapes.
func TestExplainSubcommand(t *testing.T) {
	ev := debugapi.EvidenceRecord{
		ID: 3, Victim: "10.0.0.1", Dest: 0x0A000001,
		Estimated: 4200, Baseline: 60, BaselineVar: 25, Trigger: 300, AtUpdate: 99999,
		TopK: []debugapi.TopKEntry{
			{Victim: "10.0.0.1", Dest: 0x0A000001, Estimated: 4200},
			{Victim: "10.0.0.2", Dest: 0x0A000002, Estimated: 120},
		},
		SketchQueries: 12, DecodeSingletons: 950, DecodeFailures: 50,
		SampleLevel: 2, SampleSize: 130,
		CUSUMValue: 3.1, CUSUMThreshold: 2.0, CUSUMAlarm: true,
		DecodeRejects: 4,
	}
	for name, payload := range map[string]any{
		"single": ev,
		"list":   []debugapi.EvidenceRecord{ev},
	} {
		path := writeJSON(t, payload)
		var out strings.Builder
		if err := run([]string{"explain", "-f", path}, &out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := out.String()
		for _, want := range []string{
			"alert #3: victim 10.0.0.1",
			"estimated 4200 distinct sources >= trigger 300.0",
			"95.0% singleton decode rate",
			"statistic 3.10 vs threshold 2.00",
			"corroborates",
			"4 frames rejected",
			"<< alerting",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("%s output missing %q:\n%s", name, want, got)
			}
		}
	}
}

// TestExplainSubcommandBadInput rejects garbage with an error.
func TestExplainSubcommandBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"explain", "-f", path}, &strings.Builder{}); err == nil {
		t.Fatal("explain accepted malformed JSON")
	}
	if err := run([]string{"trace", "-f", path}, &strings.Builder{}); err == nil {
		t.Fatal("trace accepted malformed JSON")
	}
}
