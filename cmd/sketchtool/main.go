// Command sketchtool manipulates serialized Distinct-Count Sketch files:
// build one from a packet trace, inspect it, query it, and merge or
// subtract sketches offline (e.g. nightly collector jobs over per-edge
// snapshots).
//
// Usage:
//
//	sketchtool build -trace attack.trace -o edge0.sketch
//	sketchtool info edge0.sketch
//	sketchtool topk -k 10 edge0.sketch
//	sketchtool merge -o all.sketch edge0.sketch edge1.sketch
//	sketchtool subtract -o delta.sketch today.sketch yesterday.sketch
//
// It also reads the monitor daemon's debug artifacts offline:
//
//	sketchtool trace -f batch.json      # saved from /debug/trace?session=&seq=
//	sketchtool explain -f alert.json    # saved from /debug/alerts/{id}
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"dcsketch/internal/dcs"
	"dcsketch/internal/stream"
	"dcsketch/internal/tcpflow"
	"dcsketch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sketchtool:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: sketchtool <build|info|topk|merge|subtract|trace|explain> [flags]")
	}
	switch args[0] {
	case "trace":
		return runTrace(args[1:], w)
	case "explain":
		return runExplain(args[1:], w)
	case "build":
		return runBuild(args[1:], w)
	case "info":
		return runInfo(args[1:], w)
	case "topk":
		return runTopK(args[1:], w)
	case "merge":
		return runCombine(args[1:], w, false)
	case "subtract":
		return runCombine(args[1:], w, true)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func loadSketch(path string) (*dcs.Sketch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sk, err := dcs.UnmarshalBinary(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sk, nil
}

func saveSketch(path string, sk *dcs.Sketch) error {
	data, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func runBuild(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sketchtool build", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "input packet trace (binary format)")
		out       = fs.String("o", "out.sketch", "output sketch file")
		seed      = fs.Uint64("seed", 1, "sketch seed")
		buckets   = fs.Int("s", 128, "second-level buckets (s)")
		tables    = fs.Int("r", 3, "second-level tables (r)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return errors.New("build: -trace is required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()

	sk, err := dcs.New(dcs.Config{Tables: *tables, Buckets: *buckets, Seed: *seed})
	if err != nil {
		return err
	}
	conv := tcpflow.New()
	n, err := tcpflow.Convert(trace.NewBinaryReader(f), conv,
		stream.SinkFunc(func(src, dst uint32, delta int64) { sk.Update(src, dst, delta) }))
	if err != nil {
		return err
	}
	if err := saveSketch(*out, sk); err != nil {
		return err
	}
	fmt.Fprintf(w, "built %s from %d packets (%d flow updates)\n", *out, n, sk.Updates())
	return nil
}

func runInfo(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sketchtool info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("info: exactly one sketch file expected")
	}
	sk, err := loadSketch(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := sk.Config()
	fmt.Fprintf(w, "file:            %s\n", fs.Arg(0))
	fmt.Fprintf(w, "config:          r=%d s=%d levels=%d seed=%d fingerprint=%v\n",
		cfg.Tables, cfg.Buckets, cfg.Levels, cfg.Seed, !cfg.DisableFingerprint)
	fmt.Fprintf(w, "updates:         %d\n", sk.Updates())
	fmt.Fprintf(w, "non-empty levels: %d\n", sk.NonEmptyLevels())
	fmt.Fprintf(w, "distinct pairs:  ~%d\n", sk.EstimateDistinctPairs())
	fmt.Fprintf(w, "memory:          %d bytes\n", sk.SizeBytes())
	return nil
}

func runTopK(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sketchtool topk", flag.ContinueOnError)
	k := fs.Int("k", 10, "number of destinations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("topk: exactly one sketch file expected")
	}
	sk, err := loadSketch(fs.Arg(0))
	if err != nil {
		return err
	}
	for i, e := range sk.TopK(*k) {
		fmt.Fprintf(w, "%3d. %-15s ~%d distinct sources\n", i+1, trace.FormatIPv4(e.Dest), e.F)
	}
	return nil
}

func runCombine(args []string, w io.Writer, subtract bool) error {
	name := "merge"
	if subtract {
		name = "subtract"
	}
	fs := flag.NewFlagSet("sketchtool "+name, flag.ContinueOnError)
	out := fs.String("o", name+".sketch", "output sketch file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("%s: at least two sketch files expected", name)
	}
	acc, err := loadSketch(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, path := range fs.Args()[1:] {
		next, err := loadSketch(path)
		if err != nil {
			return err
		}
		if subtract {
			err = acc.Subtract(next) //lint:seedok operands come from user files; Subtract rejects config/seed mismatches at runtime
		} else {
			err = acc.Merge(next) //lint:seedok operands come from user files; Merge rejects config/seed mismatches at runtime
		}
		if err != nil {
			return fmt.Errorf("%s %s: %w", name, path, err)
		}
	}
	if err := saveSketch(*out, acc); err != nil {
		return err
	}
	verb := "merged"
	if subtract {
		verb = "subtracted"
	}
	fmt.Fprintf(w, "%s %d sketches into %s (~%d distinct pairs)\n",
		verb, fs.NArg(), *out, acc.EstimateDistinctPairs())
	return nil
}
