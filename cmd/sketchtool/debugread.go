// Offline readers for the daemon's debug surface: `sketchtool trace` renders
// a saved /debug/trace dump as a human-readable batch timeline, and
// `sketchtool explain` turns a saved /debug/alerts entry into the story of
// why the alert fired. Both read files (or stdin) rather than the network, so
// they work on artifacts captured from an incident after the daemon is gone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dcsketch/internal/debugapi"
	"dcsketch/internal/tracelog"
)

// readInput reads the named file, or stdin when path is "-".
func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func runTrace(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sketchtool trace", flag.ContinueOnError)
	file := fs.String("f", "-", "JSON dump saved from /debug/trace (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := readInput(*file)
	if err != nil {
		return err
	}
	var d tracelog.Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("trace dump: %w", err)
	}
	printTimeline(w, d)
	return nil
}

func printTimeline(w io.Writer, d tracelog.Dump) {
	fmt.Fprintf(w, "batch session=%d seq=%d: %d events\n", d.Session, d.Seq, len(d.Events))
	if len(d.Events) == 0 {
		fmt.Fprintln(w, "  (no recorded events — outside the recorder's retention window, or never seen)")
		return
	}
	base := d.Events[0].TSNS
	for _, ev := range d.Events {
		fmt.Fprintf(w, "  +%10.3fms  %-22s writer=%-4d n=%-6d aux=%d\n",
			float64(ev.TSNS-base)/1e6, ev.Stage, ev.Writer, ev.N, ev.Aux)
	}
	fmt.Fprintf(w, "verdict: %s\n", verdict(d))
}

// verdict compresses a batch timeline into its delivery story: the sentence
// an operator wants first, with the events above as supporting detail.
func verdict(d tracelog.Dump) string {
	var sends, cuts, dups, applies, srvAcks, expAcks, sheds, drops int
	for _, ev := range d.Events {
		switch tracelog.StageFromString(ev.Stage) {
		case tracelog.StageExportSend:
			sends++
		case tracelog.StageExportCut:
			cuts++
		case tracelog.StageServerDup:
			dups++
		case tracelog.StageServerApply:
			applies++
		case tracelog.StageServerAck:
			srvAcks++
		case tracelog.StageExportAck:
			expAcks++
		case tracelog.StageExportShed:
			sheds++
		case tracelog.StageExportDrop:
			drops++
		}
	}
	switch {
	case applies > 1:
		return fmt.Sprintf("APPLIED %d TIMES — exactly-once contract violated", applies)
	case applies == 1 && (sends > 1 || dups > 0):
		return fmt.Sprintf("delivered exactly once after %d send attempts (%d connection cuts); %d replays suppressed by dedup",
			sends, cuts, dups)
	case applies == 1:
		return "delivered and applied on the first attempt"
	case sheds > 0:
		return "shed from the full spool before any send attempt"
	case drops > 0:
		return fmt.Sprintf("dropped after %d send attempts without an ack", sends)
	case sends > 0:
		return fmt.Sprintf("in flight: %d send attempts, not yet applied (server side not in this dump?)", sends)
	default:
		return "enqueued only — never reached the wire in the recorded window"
	}
}

func runExplain(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sketchtool explain", flag.ContinueOnError)
	file := fs.String("f", "-", "JSON saved from /debug/alerts or /debug/alerts/{id} (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := readInput(*file)
	if err != nil {
		return err
	}
	// Accept both shapes: the ledger list and a single entry.
	var list []debugapi.EvidenceRecord
	if err := json.Unmarshal(data, &list); err != nil {
		var one debugapi.EvidenceRecord
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			return fmt.Errorf("alert evidence: %w", err)
		}
		list = []debugapi.EvidenceRecord{one}
	}
	if len(list) == 0 {
		fmt.Fprintln(w, "no alert evidence recorded")
		return nil
	}
	for _, ev := range list {
		explainEvidence(w, ev)
	}
	return nil
}

func explainEvidence(w io.Writer, ev debugapi.EvidenceRecord) {
	fmt.Fprintf(w, "alert #%d: victim %s at stream position %d\n", ev.ID, ev.Victim, ev.AtUpdate)
	fmt.Fprintf(w, "  decision: estimated %d distinct sources >= trigger %.1f (baseline %.1f, variance %.1f)\n",
		ev.Estimated, ev.Trigger, ev.Baseline, ev.BaselineVar)
	decodes := ev.DecodeSingletons + ev.DecodeFailures
	rate := 0.0
	if decodes > 0 {
		rate = 100 * float64(ev.DecodeSingletons) / float64(decodes)
	}
	fmt.Fprintf(w, "  sketch:   %d queries, %.1f%% singleton decode rate, sample level %d (size %d), %d rebuilds\n",
		ev.SketchQueries, rate, ev.SampleLevel, ev.SampleSize, ev.Rebuilds)
	if ev.CUSUMThreshold != 0 {
		agrees := "quiet — victim-specific anomaly without aggregate SYN/FIN imbalance"
		if ev.CUSUMAlarm {
			agrees = "in alarm — aggregate view corroborates the sketch"
		}
		fmt.Fprintf(w, "  cusum:    statistic %.2f vs threshold %.2f (%s)\n",
			ev.CUSUMValue, ev.CUSUMThreshold, agrees)
	}
	if ev.DecodeRejects > 0 {
		fmt.Fprintf(w, "  ingest:   %d frames rejected before decode by onset — estimates may undercount\n",
			ev.DecodeRejects)
	}
	if len(ev.TopK) > 0 {
		fmt.Fprintf(w, "  top-%d at onset:\n", len(ev.TopK))
		for i, e := range ev.TopK {
			marker := ""
			if e.Dest == ev.Dest {
				marker = "  << alerting"
			}
			fmt.Fprintf(w, "    %2d. %-15s ~%d distinct sources%s\n", i+1, e.Victim, e.Estimated, marker)
		}
	}
}
