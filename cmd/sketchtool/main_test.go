package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/trace"
)

// writeTestTrace builds a small binary trace with unanswered SYNs to one
// victim.
func writeTestTrace(t *testing.T, path string, syns int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewBinaryWriter(f)
	for i := 0; i < syns; i++ {
		err := w.Write(trace.Record{
			Time: uint64(i), Src: uint32(1000 + i), Dst: 0xCB007107,
			SrcPort: uint16(i), DstPort: 443, Flags: trace.FlagSYN,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInfoTopK(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.trace")
	sketchPath := filepath.Join(dir, "t.sketch")
	writeTestTrace(t, tracePath, 120)

	var sb strings.Builder
	if err := run([]string{"build", "-trace", tracePath, "-o", sketchPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "120 packets") {
		t.Fatalf("build output: %s", sb.String())
	}

	sb.Reset()
	if err := run([]string{"info", sketchPath}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"r=3 s=128", "updates:         120"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("info output missing %q:\n%s", want, sb.String())
		}
	}

	sb.Reset()
	if err := run([]string{"topk", "-k", "1", sketchPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "203.0.113.7") {
		t.Fatalf("topk output: %s", sb.String())
	}
}

func TestMergeAndSubtract(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, dest uint32, n int) string {
		sk, err := dcs.New(dcs.Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			sk.Update(uint32(i), dest, 1)
		}
		path := filepath.Join(dir, name)
		if err := saveSketch(path, sk); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := mk("a.sketch", 1, 40)
	b := mk("b.sketch", 2, 20)
	merged := filepath.Join(dir, "m.sketch")

	var sb strings.Builder
	if err := run([]string{"merge", "-o", merged, a, b}, &sb); err != nil {
		t.Fatal(err)
	}
	sk, err := loadSketch(merged)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sk.TopK(5)); got != 2 {
		t.Fatalf("merged sketch tracks %d destinations, want 2", got)
	}

	back := filepath.Join(dir, "back.sketch")
	sb.Reset()
	if err := run([]string{"subtract", "-o", back, merged, b}, &sb); err != nil {
		t.Fatal(err)
	}
	sk, err = loadSketch(back)
	if err != nil {
		t.Fatal(err)
	}
	top := sk.TopK(5)
	if len(top) != 1 || top[0].Dest != 1 {
		t.Fatalf("subtracted sketch = %+v, want only dest 1", top)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"build"},                       // missing -trace
		{"info"},                        // missing file
		{"info", "/nonexistent.sketch"}, // unreadable
		{"topk"},
		{"merge", "-o", "x"}, // too few inputs
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestMergeIncompatibleSeeds(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, seed uint64) string {
		sk, err := dcs.New(dcs.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sk.Update(1, 2, 1)
		path := filepath.Join(dir, name)
		if err := saveSketch(path, sk); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a, b := mk("a.sketch", 1), mk("b.sketch", 2)
	var sb strings.Builder
	if err := run([]string{"merge", "-o", filepath.Join(dir, "m"), a, b}, &sb); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}
