package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcsketch/internal/trace"
)

func writeAttackTrace(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewBinaryWriter(f)
	// 500 unanswered SYNs plus 100 completed handshakes.
	for i := 0; i < 500; i++ {
		if err := w.Write(trace.Record{
			Time: uint64(i * 10), Src: uint32(0xc0000000 + i), Dst: 0xCB007107,
			SrcPort: 4444, DstPort: 443, Flags: trace.FlagSYN,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		base := uint64(5000 + i*10)
		src, dst := uint32(0x0a000000+i), uint32(0xC6336401)
		recs := []trace.Record{
			{Time: base, Src: src, Dst: dst, SrcPort: uint16(i), DstPort: 80, Flags: trace.FlagSYN},
			{Time: base + 1, Src: dst, Dst: src, SrcPort: 80, DstPort: uint16(i), Flags: trace.FlagSYN | trace.FlagACK},
			{Time: base + 2, Src: src, Dst: dst, SrcPort: uint16(i), DstPort: 80, Flags: trace.FlagACK},
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDetectsVictim(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.trace")
	writeAttackTrace(t, path)

	var sb strings.Builder
	err := run([]string{"-min-frequency", "100", "-check-interval", "100", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ALERT") {
		t.Fatalf("no alert in output:\n%s", out)
	}
	if !strings.Contains(out, "203.0.113.7") {
		t.Fatalf("victim missing from output:\n%s", out)
	}
	if !strings.Contains(out, "ALERTING") {
		t.Fatalf("final state not marked alerting:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("missing trace argument accepted")
	}
	if err := run([]string{"/nonexistent.trace"}, &sb); err == nil {
		t.Fatal("unreadable trace accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "a.trace")
	writeAttackTrace(t, path)
	if err := run([]string{"-format", "xml", path}, &sb); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestRunTextTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewTextWriter(f)
	for i := 0; i < 50; i++ {
		if err := w.Write(trace.Record{
			Time: uint64(i), Src: uint32(100 + i), Dst: 0xCB007107,
			SrcPort: 1, DstPort: 443, Flags: trace.FlagSYN,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	if err := run([]string{"-format", "text", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "50 flow updates") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
