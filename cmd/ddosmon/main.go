// Command ddosmon runs the DDoS MONITOR over a packet trace: it converts
// TCP packet records into flow updates through the half-open state machine,
// maintains a Tracking Distinct-Count Sketch, prints alerts as they fire,
// and reports the final top-k destinations by distinct-source frequency.
//
// Usage:
//
//	tracegen -o attack.trace && ddosmon attack.trace
//	ddosmon -format text -k 15 -min-frequency 200 attack.txt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"dcsketch"
	"dcsketch/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ddosmon:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ddosmon", flag.ContinueOnError)
	var (
		format   = fs.String("format", "binary", "trace format: binary, text or pcap")
		k        = fs.Int("k", 10, "top-k destinations to report")
		minFreq  = fs.Int64("min-frequency", 64, "absolute alert floor (distinct sources)")
		interval = fs.Int("check-interval", 4096, "flow updates between tracking checks")
		seed     = fs.Uint64("seed", 1, "sketch seed")
		buckets  = fs.Int("s", 128, "second-level hash-table buckets (s)")
		tables   = fs.Int("r", 3, "second-level hash tables (r)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: ddosmon [flags] <trace-file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	r, err := trace.NewReader(*format, f)
	if err != nil {
		return err
	}

	mon, err := dcsketch.NewMonitor(dcsketch.MonitorConfig{
		SketchOptions: []dcsketch.Option{
			dcsketch.WithSeed(*seed),
			dcsketch.WithBuckets(*buckets),
			dcsketch.WithTables(*tables),
		},
		K:             *k,
		CheckInterval: *interval,
		MinFrequency:  *minFreq,
		OnAlert: func(a dcsketch.Alert) {
			fmt.Fprintf(w, "ALERT update=%d dest=%s est_distinct_sources=%d baseline=%.1f\n",
				a.AtUpdate, dcsketch.FormatIPv4(a.Dest), a.Estimated, a.Baseline)
		},
	})
	if err != nil {
		return err
	}

	packets := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		mon.ProcessPacket(dcsketch.Packet{
			Time: rec.Time, Src: rec.Src, Dst: rec.Dst,
			SrcPort: rec.SrcPort, DstPort: rec.DstPort,
			SYN: rec.Flags&trace.FlagSYN != 0,
			ACK: rec.Flags&trace.FlagACK != 0,
			RST: rec.Flags&trace.FlagRST != 0,
			FIN: rec.Flags&trace.FlagFIN != 0,
		})
		packets++
	}

	fmt.Fprintf(w, "\nprocessed %d packets -> %d flow updates; %d half-open states tracked\n",
		packets, mon.Updates(), mon.HalfOpenStates())
	fmt.Fprintf(w, "top-%d destinations by distinct half-open sources:\n", *k)
	for i, e := range mon.TopK(*k) {
		marker := ""
		if mon.Alerting(e.Dest) {
			marker = "  << ALERTING"
		}
		fmt.Fprintf(w, "%3d. %-15s ~%d distinct sources%s\n",
			i+1, dcsketch.FormatIPv4(e.Dest), e.Count, marker)
	}
	return nil
}
