// Command ddosrelay is the regional relay tier of the collector fabric: it
// accepts edge exporters' update batches exactly like ddosmond, folds them
// into a regional sketch, and re-exports every accepted batch to the global
// collector through its own replay session — so a fleet fans in
// edge → regional → global with exactly-once application at each hop.
//
// Usage:
//
//	ddosrelay -listen 127.0.0.1:7272 -upstream 127.0.0.1:7171 -session 42
//
// Pin -session (or use -snapshot-dir) so a restarted relay resumes its
// upstream replay horizon instead of re-sending applied batches under a
// fresh identity. Stop with SIGINT/SIGTERM for a graceful drain.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/relay"
	"dcsketch/internal/snapshot"
	"dcsketch/internal/trace"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sigs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ddosrelay:", err)
		os.Exit(1)
	}
}

// run starts the relay and blocks until a value arrives on stop. If ready
// is non-nil it is called once with the bound downstream address — a seam
// for tests to discover ports.
func run(args []string, stop <-chan os.Signal, ready func(serveAddr net.Addr)) error {
	fs := flag.NewFlagSet("ddosrelay", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:7272", "downstream listen address (edge exporters connect here)")
		upstream = fs.String("upstream", "", "global collector address (required)")
		k        = fs.Int("k", 10, "top-k destinations in status lines")
		minFreq  = fs.Int64("min-frequency", 64, "absolute alert floor for the regional monitor")
		interval = fs.Int("check-interval", 4096, "flow updates between regional tracking checks")
		seed     = fs.Uint64("seed", 1, "sketch seed (must match the whole fleet)")
		buckets  = fs.Int("s", 128, "second-level hash-table buckets (s)")
		tables   = fs.Int("r", 3, "second-level hash tables (r)")
		shards   = fs.Int("shards", 0, "ingest shard workers (0 = inline single-monitor path)")
		spool    = fs.Int("spool", 0, "upstream spool bound in batches (0 = export default)")
		session  = fs.Uint64("session", 0, "upstream replay session id (0 draws a random one)")
		shed     = fs.Bool("shed", false, "shed whole batches when ingest shard queues saturate instead of blocking")
		status   = fs.Duration("status-every", 10*time.Second, "status line period (0 disables)")
		drain    = fs.Duration("drain-budget", 5*time.Second, "how long shutdown may wait for the upstream spool to empty")
		snapDir  = fs.String("snapshot-dir", "", "directory for crash-safe state snapshots: restored on boot, written periodically and on graceful shutdown (empty disables)")
		snapSecs = fs.Duration("snapshot-interval", 30*time.Second, "period between crash-safe snapshots when -snapshot-dir is set (0 disables the timer; shutdown still flushes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *upstream == "" {
		return errors.New("-upstream required")
	}

	cfg := relay.Config{
		Upstream: *upstream,
		Monitor: monitor.Config{
			Sketch:        dcs.Config{Tables: *tables, Buckets: *buckets, Seed: *seed},
			K:             *k,
			CheckInterval: *interval,
			MinFrequency:  *minFreq,
		},
		IngestShards: *shards,
		SpoolBatches: *spool,
		SessionID:    *session,
		Seed:         *seed,
		ShedOnFull:   *shed,
	}

	// Restore precedes New/Listen for the same reason as in ddosmond: the
	// horizons and the upstream spool must be live before the first edge
	// hello. Missing file = fresh start; corrupt file = hard error.
	snapPath := ""
	if *snapDir != "" {
		snapPath = filepath.Join(*snapDir, "ddosrelay.snapshot")
		st, err := snapshot.ReadFile(snapPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// fresh start
		case err != nil:
			return fmt.Errorf("restore %s: %w", snapPath, err)
		default:
			cfg.Restore = st
		}
	}

	rly, err := relay.New(cfg)
	if err != nil {
		return err
	}
	if cfg.Restore != nil {
		fmt.Printf("restored snapshot %s (upstream session %d)\n", snapPath, rly.SessionID())
	}
	addr, err := rly.Listen(*listen)
	if err != nil {
		rly.Shutdown(0)
		return err
	}
	fmt.Printf("ddosrelay listening on %s, forwarding to %s (session %d, r=%d s=%d seed=%d)\n",
		addr, *upstream, rly.SessionID(), *tables, *buckets, *seed)
	if ready != nil {
		ready(addr)
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		defer ticker.Stop()
		tick = ticker.C
	}
	var snapTick <-chan time.Time
	if snapPath != "" && *snapSecs > 0 {
		snapTicker := time.NewTicker(*snapSecs)
		defer snapTicker.Stop()
		snapTick = snapTicker.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("shutting down...")
			// Stop downstream first (handlers and shard queues drain, no
			// new Forward calls), give the upstream spool its drain
			// budget, then flush the final snapshot: whatever the drain
			// could not deliver stays in the snapshot's spool section and
			// is retransmitted by the next incarnation.
			rly.Shutdown(*drain)
			if snapPath != "" {
				if err := writeSnapshot(rly, snapPath); err != nil {
					fmt.Fprintln(os.Stderr, "ddosrelay: final snapshot:", err)
				} else {
					fmt.Printf("snapshot flushed to %s\n", snapPath)
				}
			}
			printStatus(rly, *k)
			return nil
		case <-snapTick:
			if err := writeSnapshot(rly, snapPath); err != nil {
				fmt.Fprintln(os.Stderr, "ddosrelay: snapshot:", err)
			}
		case <-tick:
			printStatus(rly, *k)
		}
	}
}

// writeSnapshot captures the relay's recovery state (server sections plus
// the upstream spool) and writes it atomically.
func writeSnapshot(rly *relay.Relay, path string) error {
	st, err := rly.SnapshotState()
	if err != nil {
		return err
	}
	return snapshot.WriteFile(path, st)
}

func printStatus(rly *relay.Relay, k int) {
	st := rly.Stats()
	fmt.Printf("status: %d updates in %d batches downstream; %d/%d batches acked/enqueued upstream, %d spooled, %d dropped\n",
		st.Server.Updates, st.Server.Batches,
		st.Export.BatchesAcked, st.Export.BatchesEnqueued, st.Export.SpoolDepth, st.Export.BatchesDropped)
	for i, e := range rly.TopK(k) {
		fmt.Printf("  %2d. %-15s ~%d distinct sources\n", i+1, trace.FormatIPv4(e.Dest), e.F)
	}
}
