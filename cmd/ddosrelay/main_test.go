package main

import (
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/export"
	"dcsketch/internal/monitor"
	"dcsketch/internal/server"
	"dcsketch/internal/wire"
)

// startRelay runs the relay command with the given flags and returns its
// bound downstream address plus a stop function (SIGTERM, wait for exit).
func startRelay(t *testing.T, extra ...string) (serveAddr net.Addr, stopFn func()) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	readyCh := make(chan net.Addr, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-status-every", "0"}, extra...)
	go func() {
		done <- run(args, stop, func(sa net.Addr) { readyCh <- sa })
	}()
	stopFn = func() {
		stop <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("relay did not stop")
		}
	}
	select {
	case addr := <-readyCh:
		return addr, stopFn
	case err := <-done:
		t.Fatalf("relay exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("relay did not become ready")
	}
	panic("unreachable")
}

func TestRunErrors(t *testing.T) {
	stop := make(chan os.Signal)
	if err := run([]string{}, stop, nil); err == nil {
		t.Fatal("missing -upstream accepted")
	}
	if err := run([]string{"-bogus"}, stop, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-upstream", "127.0.0.1:1", "-listen", "not-an-address"}, stop, nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run([]string{"-upstream", "127.0.0.1:1", "-s", "1"}, stop, nil); err == nil {
		t.Fatal("invalid sketch config accepted")
	}
}

// TestRelayFansInToGlobal drives an edge exporter through the relay command
// into a real global server, restarts the relay from its snapshot, and
// checks the global sketch saw the whole trace exactly once.
func TestRelayFansInToGlobal(t *testing.T) {
	global, err := server.New(server.Config{
		Monitor: monitor.Config{Sketch: dcs.Config{Tables: 3, Buckets: 128, Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	globalAddr, err := global.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(global.Shutdown)

	dir := t.TempDir()
	flags := []string{
		"-upstream", globalAddr.String(),
		"-session", "42",
		"-snapshot-dir", dir,
		"-snapshot-interval", "0",
		"-drain-budget", "5s",
	}
	relayAddr, stopRelay := startRelay(t, flags...)

	exp, err := export.New(export.Config{Addr: relayAddr.String(), SessionID: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 20
	for seq := uint64(1); seq <= batches; seq++ {
		b := make([]wire.Update, 3)
		for j := range b {
			b[j] = wire.Update{Src: uint32(7000 + 3*seq + uint64(j)), Dst: uint32(seq), Delta: 1}
		}
		if err := exp.Export(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	exp.Close()

	// Graceful stop drains the upstream spool, then flushes the snapshot.
	stopRelay()
	if _, err := os.Stat(filepath.Join(dir, "ddosrelay.snapshot")); err != nil {
		t.Fatalf("shutdown flushed no snapshot: %v", err)
	}

	// Every batch reached the global tier through the relay's session.
	top := global.TopK(batches + 5)
	seen := map[uint32]bool{}
	for _, e := range top {
		if e.Dest == 0 || uint64(e.Dest) > batches {
			t.Fatalf("global sketch holds unknown dest %d", e.Dest)
		}
		seen[e.Dest] = true
	}
	if len(seen) != batches {
		t.Fatalf("global sketch holds %d of %d destinations", len(seen), batches)
	}
	gs := global.Stats()
	if gs.DuplicateBatches != 0 {
		t.Fatalf("global deduped %d batches on a clean run", gs.DuplicateBatches)
	}

	// The restarted relay resumes the pinned upstream session: replaying
	// the edge trace is pruned at the relay (restored horizons), so the
	// global tier sees nothing new and nothing twice.
	relayAddr2, stopRelay2 := startRelay(t, flags...)
	defer stopRelay2()
	exp2, err := export.New(export.Config{Addr: relayAddr2.String(), SessionID: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	for seq := uint64(1); seq <= batches; seq++ {
		b := make([]wire.Update, 3)
		for j := range b {
			b[j] = wire.Update{Src: uint32(7000 + 3*seq + uint64(j)), Dst: uint32(seq), Delta: 1}
		}
		if err := exp2.Export(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp2.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	gs = global.Stats()
	if gs.Batches != batches {
		t.Fatalf("global applied %d batches after replay, want %d", gs.Batches, batches)
	}
	if gs.DuplicateBatches != 0 {
		t.Fatalf("replay leaked %d duplicate batches to the global tier", gs.DuplicateBatches)
	}
}
