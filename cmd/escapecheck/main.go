// Command escapecheck is the legacy entry point for the //lint:allocfree
// ground-truth gate, kept as a thin wrapper over cmd/perfcheck restricted to
// the allocfree contract. It accepts the historical flag syntax
//
//	escapecheck [-require pkg:func ...]
//
// where each -require names a function that must carry //lint:allocfree
// (methods written (*Recv).name), and runs the same compiler-diagnostics
// check perfcheck runs: go build -gcflags='-m -m' over the annotated
// packages, failing on any in-span heap escape not acknowledged by a
// same-line "//lint:allocok <reason>". New callers (and CI) should use
// perfcheck directly, which adds the //lint:bce and //lint:inline contracts
// and the -require-file pins format.
//
// Exit status: 0 clean, 1 violations, 2 operational errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dcsketch/internal/perfcheck"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapecheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("escapecheck", flag.ContinueOnError)
	fs.SetOutput(w)
	var required multiFlag
	fs.Var(&required, "require", "pkgpath:func that must be annotated //lint:allocfree (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments %q (escapecheck always checks the enclosing module)", fs.Args())
	}
	pins, err := legacyPins(required)
	if err != nil {
		return 2, err
	}
	return perfcheck.Main(perfcheck.Options{
		Pins:      pins,
		Contracts: map[perfcheck.Contract]bool{perfcheck.Allocfree: true},
		Tool:      "escapecheck",
	}, w)
}

// legacyPins converts historical "pkg:func" -require values into allocfree
// pins.
func legacyPins(required []string) ([]perfcheck.Pin, error) {
	var pins []perfcheck.Pin
	for i, req := range required {
		pkg, sym, ok := strings.Cut(req, ":")
		if !ok || pkg == "" || sym == "" {
			return nil, fmt.Errorf("-require %q: want <pkgpath>:<func>", req)
		}
		pins = append(pins, perfcheck.Pin{
			Contract: perfcheck.Allocfree,
			Pkg:      pkg,
			Name:     sym,
			Source:   fmt.Sprintf("-require[%d]", i),
		})
	}
	return pins, nil
}

// multiFlag collects repeated -require values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}
