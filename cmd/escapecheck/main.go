// Command escapecheck ground-truths the //lint:allocfree annotations against
// the compiler's own escape analysis. The allocfree analyzer (cmd/sketchlint)
// proves the annotated hot paths free of allocation-inducing *constructs* at
// the AST level; escapecheck closes the gap the AST cannot see — a &local
// outliving its frame, a value the compiler decides to heap-allocate — by
// running
//
//	go build -gcflags='-m -m' <annotated packages>
//
// and failing when any escape-analysis diagnostic ("escapes to heap",
// "moved to heap") lands inside the line span of a //lint:allocfree function.
// Build-cache replays include these diagnostics, so the gate holds on warm
// caches too.
//
// The -require flag (repeatable) names functions that MUST carry the
// //lint:allocfree annotation, as pkgpath:name with methods written
// (*Recv).name. It pins the coverage: silently deleting the annotation from
// a hot-path kernel fails CI instead of silently shrinking the proof.
//
// A "//lint:allocok <reason>" on the escaping line acknowledges a reviewed
// escape, mirroring the analyzer's suppression vocabulary.
//
// Usage:
//
//	escapecheck [-require pkg:func ...]
//
// Exit status: 0 clean, 1 violations, 2 operational errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/ast"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"dcsketch/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapecheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// span is the source extent of one annotated function.
type span struct {
	pkg        string // import path
	name       string // receiver-qualified, e.g. (*Sketch).updateKernel
	file       string // absolute path
	start, end int    // inclusive line range (doc comment excluded)
}

// escape is one escape-analysis diagnostic at a source position.
type escape struct {
	file string
	line int
	col  int
	msg  string
}

func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("escapecheck", flag.ContinueOnError)
	fs.SetOutput(w)
	var required multiFlag
	fs.Var(&required, "require", "pkgpath:func that must be annotated //lint:allocfree (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments %q (escapecheck always checks the enclosing module)", fs.Args())
	}

	cwd, err := os.Getwd()
	if err != nil {
		return 2, err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return 2, err
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return 2, err
	}
	spans := annotatedSpans(pkgs)

	violations := 0
	for _, miss := range missingRequired(spans, required) {
		violations++
		fmt.Fprintf(w, "escapecheck: required function %s is not annotated //lint:allocfree\n", miss)
	}
	if len(spans) == 0 {
		if violations > 0 {
			return 1, nil
		}
		fmt.Fprintln(w, "escapecheck: no //lint:allocfree annotations found; nothing to check")
		return 0, nil
	}

	out, err := compileDiagnostics(root, spanPackages(spans))
	if err != nil {
		return 2, err
	}
	escapes := parseEscapes(strings.NewReader(out))
	// -m -m repeats an escape at the same position with and without the
	// flow trace suffix; report each position once.
	seen := map[string]bool{}
	for _, e := range escapes {
		sp := matchSpan(spans, e)
		if sp == nil {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d", e.file, e.line, e.col)
		if seen[key] {
			continue
		}
		seen[key] = true
		if lineSuppressed(sp.file, e.line) {
			continue
		}
		violations++
		fmt.Fprintf(w, "%s:%d:%d: heap allocation in //lint:allocfree function %s: %s\n",
			e.file, e.line, e.col, sp.name, e.msg)
	}
	if violations > 0 {
		fmt.Fprintf(w, "escapecheck: %d violation(s) across %d annotated function(s)\n", violations, len(spans))
		return 1, nil
	}
	return 0, nil
}

// multiFlag collects repeated -require values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

// annotatedSpans collects the line spans of every //lint:allocfree function
// in the module.
func annotatedSpans(pkgs []*analysis.Package) []span {
	var spans []span
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, annotated := analysis.DocDirective(fn.Doc, "allocfree"); !annotated {
					continue
				}
				start := pkg.Fset.Position(fn.Pos()) // excludes the doc comment
				end := pkg.Fset.Position(fn.End())
				spans = append(spans, span{
					pkg:   pkg.Path,
					name:  qualifiedName(fn),
					file:  start.Filename,
					start: start.Line,
					end:   end.Line,
				})
			}
		}
	}
	return spans
}

// qualifiedName renders a FuncDecl as name, (Recv).name or (*Recv).name.
func qualifiedName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	base := "?"
	switch t := t.(type) {
	case *ast.Ident:
		base = t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			base = id.Name
		}
	}
	if ptr {
		return "(*" + base + ")." + fn.Name.Name
	}
	return "(" + base + ")." + fn.Name.Name
}

// missingRequired returns the -require entries (pkgpath:func) with no
// matching annotated span, sorted.
func missingRequired(spans []span, required []string) []string {
	have := map[string]bool{}
	for _, sp := range spans {
		have[sp.pkg+":"+sp.name] = true
	}
	var missing []string
	for _, req := range required {
		if !have[req] {
			missing = append(missing, req)
		}
	}
	sort.Strings(missing)
	return missing
}

// spanPackages returns the sorted set of import paths containing annotations.
func spanPackages(spans []span) []string {
	set := map[string]bool{}
	for _, sp := range spans {
		set[sp.pkg] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// compileDiagnostics builds the given packages with escape analysis
// diagnostics enabled and returns the compiler's combined output. The -m
// flags apply to the packages named on the command line; the build cache
// replays their diagnostics on unchanged rebuilds.
func compileDiagnostics(root string, pkgPaths []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m -m"}, pkgPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), nil
}

// diagLine matches one compiler diagnostic: file.go:line:col: message.
var diagLine = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.*)$`)

// parseEscapes extracts heap-allocation diagnostics from -m -m output:
// "escapes to heap" and "moved to heap" lines. Indented escape-flow
// explanations, "# package" headers, inlining notes and "does not escape"
// lines are skipped.
func parseEscapes(r io.Reader) []escape {
	var out []escape
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") ||
			strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t") {
			continue
		}
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, escape{file: m[1], line: ln, col: col, msg: msg})
	}
	return out
}

// matchSpan finds the annotated function whose line span contains the
// diagnostic. Compiler paths are package-relative or absolute depending on
// invocation; spans hold absolute paths, so match on path suffix.
func matchSpan(spans []span, e escape) *span {
	for i := range spans {
		sp := &spans[i]
		if e.line < sp.start || e.line > sp.end {
			continue
		}
		if sp.file == e.file || strings.HasSuffix(sp.file, "/"+filepath.ToSlash(e.file)) {
			return sp
		}
	}
	return nil
}

// lineSuppressed reports whether the named source line carries a
// "//lint:allocok" acknowledgment. file is the span's absolute path (the
// compiler may emit module-relative paths).
func lineSuppressed(file string, line int) bool {
	f, err := os.Open(file)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for n := 1; sc.Scan(); n++ {
		if n == line {
			return strings.Contains(sc.Text(), "//lint:allocok")
		}
	}
	return false
}
