package main

import (
	"strings"
	"testing"

	"dcsketch/internal/perfcheck"
)

func TestLegacyPins(t *testing.T) {
	pins, err := legacyPins([]string{
		"dcsketch/internal/dcs:(*Sketch).applySig",
		"dcsketch/internal/vec:BuildMaskedAddends",
	})
	if err != nil {
		t.Fatalf("legacyPins: %v", err)
	}
	if len(pins) != 2 {
		t.Fatalf("got %d pins, want 2", len(pins))
	}
	for i, p := range pins {
		if p.Contract != perfcheck.Allocfree {
			t.Errorf("pin[%d].Contract = %v, want Allocfree", i, p.Contract)
		}
	}
	if pins[0].Pkg != "dcsketch/internal/dcs" || pins[0].Name != "(*Sketch).applySig" {
		t.Errorf("pin[0] = %+v", pins[0])
	}
	if pins[1].Source != "-require[1]" {
		t.Errorf("pin[1].Source = %q, want -require[1]", pins[1].Source)
	}
}

func TestLegacyPinsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"nofunc", ":f", "pkg:"} {
		if _, err := legacyPins([]string{bad}); err == nil {
			t.Errorf("legacyPins(%q) accepted a malformed pin", bad)
		}
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"./..."}, &b)
	if code != 2 || err == nil {
		t.Fatalf("run(positional) = %d, %v; want exit 2", code, err)
	}
}

func TestRunRejectsBadRequire(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"-require", "nosuchformat"}, &b)
	if code != 2 || err == nil || !strings.Contains(err.Error(), "want <pkgpath>:<func>") {
		t.Fatalf("run(bad -require) = %d, %v; want exit 2 with format hint", code, err)
	}
}
