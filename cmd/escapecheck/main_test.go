package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const sampleOutput = `# dcsketch/internal/dcs
internal/dcs/dcs.go:320:7: can inline (*Sketch).updateKernel with cost 70
internal/dcs/dcs.go:321:2: s does not escape
internal/dcs/dcs.go:330:12: key escapes to heap:
internal/dcs/dcs.go:330:12:   flow: {heap} = key:
internal/dcs/dcs.go:330:12:     from key (spill) at internal/dcs/dcs.go:330:12
	escapes because of loop depth
internal/dcs/dcs.go:335:9: moved to heap: fp
internal/dcs/other.go:12:3: make([]int64, n) escapes to heap
internal/dcs/dcs.go:400:2: leaking param: buckets
`

func TestParseEscapes(t *testing.T) {
	got := parseEscapes(strings.NewReader(sampleOutput))
	want := []escape{
		{file: "internal/dcs/dcs.go", line: 330, col: 12, msg: "key escapes to heap:"},
		{file: "internal/dcs/dcs.go", line: 335, col: 9, msg: "moved to heap: fp"},
		{file: "internal/dcs/other.go", line: 12, col: 3, msg: "make([]int64, n) escapes to heap"},
	}
	if len(got) != len(want) {
		t.Fatalf("parseEscapes = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("parseEscapes[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMatchSpan(t *testing.T) {
	spans := []span{
		{pkg: "dcsketch/internal/dcs", name: "(*Sketch).updateKernel",
			file: "/root/repo/internal/dcs/dcs.go", start: 318, end: 332},
		{pkg: "dcsketch/internal/dcs", name: "(*Sketch).addSig",
			file: "/root/repo/internal/dcs/dcs.go", start: 340, end: 366},
	}
	tests := []struct {
		e    escape
		want string // matched span name, "" for no match
	}{
		{escape{file: "internal/dcs/dcs.go", line: 330}, "(*Sketch).updateKernel"},
		{escape{file: "/root/repo/internal/dcs/dcs.go", line: 345}, "(*Sketch).addSig"},
		{escape{file: "internal/dcs/dcs.go", line: 335}, ""},   // between spans
		{escape{file: "internal/dcs/other.go", line: 330}, ""}, // other file
		{escape{file: "dcs.go", line: 330}, ""},                // suffix must align on a path boundary... but "/dcs.go" matches
	}
	for _, tt := range tests {
		sp := matchSpan(spans, tt.e)
		name := ""
		if sp != nil {
			name = sp.name
		}
		if tt.e.file == "dcs.go" {
			// "/dcs.go" is a suffix of the absolute path, so this matches;
			// compiler output never emits bare basenames for module files,
			// so the looseness is acceptable. Document it.
			if name != "(*Sketch).updateKernel" {
				t.Errorf("matchSpan(%+v) = %q; bare basename expected to suffix-match", tt.e, name)
			}
			continue
		}
		if name != tt.want {
			t.Errorf("matchSpan(%+v) = %q, want %q", tt.e, name, tt.want)
		}
	}
}

func TestMissingRequired(t *testing.T) {
	spans := []span{
		{pkg: "dcsketch/internal/dcs", name: "(*Sketch).updateKernel"},
		{pkg: "dcsketch/internal/iheap", name: "(*Heap).Adjust"},
	}
	missing := missingRequired(spans, []string{
		"dcsketch/internal/dcs:(*Sketch).updateKernel",
		"dcsketch/internal/dcs:(*Sketch).gone",
		"dcsketch/internal/iheap:(*Heap).Adjust",
	})
	if len(missing) != 1 || missing[0] != "dcsketch/internal/dcs:(*Sketch).gone" {
		t.Errorf("missingRequired = %v, want [dcsketch/internal/dcs:(*Sketch).gone]", missing)
	}
	if got := missingRequired(spans, nil); len(got) != 0 {
		t.Errorf("missingRequired(no requirements) = %v, want none", got)
	}
}

func TestQualifiedName(t *testing.T) {
	src := `package p
func plain() {}
func (s *Sketch) ptr() {}
func (h Heap) val() {}
`
	f, err := parser.ParseFile(token.NewFileSet(), "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"plain", "(*Sketch).ptr", "(Heap).val"}
	i := 0
	for _, d := range f.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if got := qualifiedName(fn); got != want[i] {
			t.Errorf("qualifiedName #%d = %q, want %q", i, got, want[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("parsed %d FuncDecls, want %d", i, len(want))
	}
}

func TestSpanPackages(t *testing.T) {
	spans := []span{
		{pkg: "b"}, {pkg: "a"}, {pkg: "b"},
	}
	got := spanPackages(spans)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("spanPackages = %v, want [a b]", got)
	}
}
