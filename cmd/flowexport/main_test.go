package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcsketch/internal/server"
	"dcsketch/internal/trace"
)

func writeSYNTrace(t *testing.T, path string, n int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewBinaryWriter(f)
	for i := 0; i < n; i++ {
		if err := w.Write(trace.Record{
			Time: uint64(i), Src: uint32(5000 + i), Dst: 0xCB007107,
			SrcPort: uint16(i), DstPort: 443, Flags: trace.FlagSYN,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestExportToInProcessDaemon(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	dir := t.TempDir()
	path := filepath.Join(dir, "a.trace")
	writeSYNTrace(t, path, 300)

	err = run([]string{"-connect", addr.String(), "-batch", "64", "-query", "3", path})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Updates; got != 300 {
		t.Fatalf("server ingested %d updates, want 300", got)
	}
	top := srv.TopK(1)
	if len(top) != 1 || top[0].Dest != 0xCB007107 {
		t.Fatalf("server TopK = %+v", top)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := run([]string{"-batch", "0", "x"}); err == nil {
		t.Fatal("batch=0 accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "a.trace")
	writeSYNTrace(t, path, 5)
	if err := run([]string{"-format", "xml", path}); err == nil {
		t.Fatal("bad format accepted")
	}
	if err := run([]string{"-connect", "127.0.0.1:1", "-timeout", "200ms", path}); err == nil {
		t.Fatal("unreachable daemon accepted")
	}
}
