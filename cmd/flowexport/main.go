// Command flowexport is an edge exporter: it replays a packet trace through
// the TCP half-open state machine and streams the resulting flow updates to
// a ddosmond daemon in batches, then optionally queries the daemon's top-k.
//
// Usage:
//
//	tracegen -o attack.trace
//	ddosmond -listen 127.0.0.1:7171 &
//	flowexport -connect 127.0.0.1:7171 -query 10 attack.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dcsketch/internal/server"
	"dcsketch/internal/stream"
	"dcsketch/internal/tcpflow"
	"dcsketch/internal/trace"
	"dcsketch/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flowexport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flowexport", flag.ContinueOnError)
	var (
		connect = fs.String("connect", "127.0.0.1:7171", "ddosmond address")
		format  = fs.String("format", "binary", "trace format: binary, text or pcap")
		batch   = fs.Int("batch", 512, "updates per wire batch")
		query   = fs.Int("query", 0, "after replay, query the daemon's top-k (0 disables)")
		timeout = fs.Duration("timeout", 10*time.Second, "connection timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: flowexport [flags] <trace-file>")
	}
	if *batch < 1 {
		return fmt.Errorf("batch = %d, must be >= 1", *batch)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(*format, f)
	if err != nil {
		return err
	}

	client, err := server.Dial(*connect, *timeout)
	if err != nil {
		return err
	}
	defer client.Close()

	conv := tcpflow.New()
	pending := make([]wire.Update, 0, *batch)
	sent := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := client.SendUpdates(pending); err != nil {
			return err
		}
		sent += len(pending)
		pending = pending[:0]
		return nil
	}
	sink := stream.SinkFunc(func(src, dst uint32, delta int64) {
		pending = append(pending, wire.Update{Src: src, Dst: dst, Delta: delta})
	})

	packets := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		conv.Process(rec, sink)
		packets++
		if len(pending) >= *batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flowexport: %d packets -> %d flow updates exported\n", packets, sent)

	if *query > 0 {
		top, err := client.TopK(*query)
		if err != nil {
			return err
		}
		fmt.Printf("daemon top-%d:\n", *query)
		for i, e := range top {
			fmt.Printf("  %2d. %-15s ~%d distinct sources\n", i+1, trace.FormatIPv4(e.Dest), e.F)
		}
	}
	return nil
}
