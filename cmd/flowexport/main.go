// Command flowexport is an edge exporter: it replays a packet trace through
// the TCP half-open state machine and streams the resulting flow updates to
// a ddosmond daemon in batches, then optionally queries the daemon's top-k.
//
// Delivery rides the fault-tolerant exporter (internal/export): updates are
// spooled in memory and shipped by a background loop that reconnects with
// jittered backoff and replays unacknowledged batches exactly once, so a
// daemon restart or a flaky link mid-replay loses nothing (until the spool
// bound forces drop-oldest shedding, which is reported).
//
// Usage:
//
//	tracegen -o attack.trace
//	ddosmond -listen 127.0.0.1:7171 &
//	flowexport -connect 127.0.0.1:7171 -query 10 attack.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dcsketch/internal/export"
	"dcsketch/internal/server"
	"dcsketch/internal/stream"
	"dcsketch/internal/tcpflow"
	"dcsketch/internal/trace"
	"dcsketch/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flowexport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flowexport", flag.ContinueOnError)
	var (
		connect = fs.String("connect", "127.0.0.1:7171", "ddosmond address")
		format  = fs.String("format", "binary", "trace format: binary, text or pcap")
		batch   = fs.Int("batch", 512, "updates per wire batch")
		query   = fs.Int("query", 0, "after replay, query the daemon's top-k (0 disables)")
		timeout = fs.Duration("timeout", 10*time.Second, "per-attempt connection timeout")
		drain   = fs.Duration("drain", 0, "budget for flushing the spool after replay (0 = 4x timeout)")
		spool   = fs.Int("spool", 4096, "spooled batches kept while the daemon is unreachable")
		session = fs.Uint64("session", 0, "replay session id (0 = random; reuse to resume after a crash)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: flowexport [flags] <trace-file>")
	}
	if *batch < 1 {
		return fmt.Errorf("batch = %d, must be >= 1", *batch)
	}
	if *drain <= 0 {
		*drain = 4 * *timeout
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(*format, f)
	if err != nil {
		return err
	}

	exp, err := export.New(export.Config{
		Addr:           *connect,
		DialTimeout:    *timeout,
		AttemptTimeout: *timeout,
		SpoolBatches:   *spool,
		SessionID:      *session,
	})
	if err != nil {
		return err
	}
	defer exp.Close()

	conv := tcpflow.New()
	pending := make([]wire.Update, 0, *batch)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := exp.Export(pending); err != nil {
			return err
		}
		pending = pending[:0]
		return nil
	}
	sink := stream.SinkFunc(func(src, dst uint32, delta int64) {
		pending = append(pending, wire.Update{Src: src, Dst: dst, Delta: delta})
	})

	packets := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		conv.Process(rec, sink)
		packets++
		if len(pending) >= *batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := exp.Drain(*drain); err != nil {
		return err
	}
	st := exp.Stats()
	fmt.Fprintf(os.Stderr, "flowexport: %d packets -> %d flow updates exported (%d batches", packets, st.UpdatesAcked, st.BatchesAcked)
	if st.Reconnects > 0 || st.Retransmits > 0 {
		fmt.Fprintf(os.Stderr, ", %d reconnects, %d retransmits", st.Reconnects, st.Retransmits)
	}
	if st.UpdatesDropped > 0 {
		fmt.Fprintf(os.Stderr, ", %d updates SHED", st.UpdatesDropped)
	}
	fmt.Fprintln(os.Stderr, ")")

	if *query > 0 {
		client, err := server.Dial(*connect, *timeout)
		if err != nil {
			return err
		}
		defer client.Close()
		top, err := client.TopK(*query)
		if err != nil {
			return err
		}
		fmt.Printf("daemon top-%d:\n", *query)
		for i, e := range top {
			fmt.Printf("  %2d. %-15s ~%d distinct sources\n", i+1, trace.FormatIPv4(e.Dest), e.F)
		}
	}
	return nil
}
