package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"dcsketch/internal/analysis"
)

func TestListIncludesAllAnalyzers(t *testing.T) {
	var sb strings.Builder
	code, err := run([]string{"-list"}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v; want 0, nil", code, err)
	}
	out := sb.String()
	for _, a := range analyzers {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
	if got, want := strings.Count(out, "\n"), len(analyzers); got != want {
		t.Errorf("-list printed %d lines, want %d", got, want)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(analyzers) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, %v; want %d, nil", len(all), err, len(analyzers))
	}
	subset, err := selectAnalyzers("allocfree, poolcheck")
	if err != nil {
		t.Fatalf("selectAnalyzers(allocfree, poolcheck): %v", err)
	}
	if len(subset) != 2 || subset[0].Name != "allocfree" || subset[1].Name != "poolcheck" {
		t.Errorf("selectAnalyzers(allocfree, poolcheck) = %v", subset)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Error("selectAnalyzers(nosuch): expected error")
	} else if !strings.Contains(err.Error(), "scratchsafe") {
		t.Errorf("unknown-analyzer error should list the suite, got: %v", err)
	}
}

func TestInventoryExcludesJSON(t *testing.T) {
	var sb strings.Builder
	code, err := run([]string{"-json", "-inventory"}, &sb)
	if code != 2 || err == nil {
		t.Fatalf("run(-json -inventory) = %d, %v; want 2 and an error", code, err)
	}
	if !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("error should explain the flag conflict, got: %v", err)
	}
}

func TestUnsupportedPattern(t *testing.T) {
	var sb strings.Builder
	code, err := run([]string{"./internal/..."}, &sb)
	if code != 2 || err == nil {
		t.Fatalf("run(./internal/...) = %d, %v; want 2 and an error", code, err)
	}
}

// TestJSONSummaryShape pins the -json trailer contract consumed by ci.sh's
// suppression-inventory grep: summary objects carry "summary":true plus the
// per-analyzer counters, and never the diagnostic fields.
func TestJSONSummaryShape(t *testing.T) {
	data, err := json.Marshal(jsonSummary{
		Summary:    true,
		Analyzer:   "lockorder",
		Packages:   55,
		Findings:   1,
		Suppressed: 2,
		ElapsedMS:  12.345,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"summary":true`, `"analyzer":"lockorder"`, `"packages":55`, `"findings":1`, `"suppressed":2`, `"elapsed_ms":12.345`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("summary JSON missing %s: %s", key, data)
		}
	}
	var round jsonSummary
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if round != (jsonSummary{Summary: true, Analyzer: "lockorder", Packages: 55, Findings: 1, Suppressed: 2, ElapsedMS: 12.345}) {
		t.Errorf("jsonSummary round-trip = %+v", round)
	}
	// A summary line must be distinguishable from a diagnostic line.
	if strings.Contains(string(data), `"position"`) || strings.Contains(string(data), `"message"`) {
		t.Errorf("summary JSON leaks diagnostic fields: %s", data)
	}
}

func TestJSONLine(t *testing.T) {
	d := analysis.Diagnostic{
		Pos:        token.NoPos,
		Analyzer:   "allocfree",
		Message:    `append may grow and allocate in //lint:allocfree function "kernel"`,
		Suppressed: true,
	}
	data, err := json.Marshal(jsonLine("dcs.go:42:7", d))
	if err != nil {
		t.Fatal(err)
	}
	var round jsonDiagnostic
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	want := jsonDiagnostic{
		Analyzer:   "allocfree",
		Position:   "dcs.go:42:7",
		Message:    d.Message,
		Suppressed: true,
	}
	if round != want {
		t.Errorf("jsonLine round-trip = %+v, want %+v", round, want)
	}
	if !strings.Contains(string(data), `"suppressed":true`) {
		t.Errorf("JSON missing suppressed flag: %s", data)
	}
}
