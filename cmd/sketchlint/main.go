// Command sketchlint is the project's static-analysis driver: a
// multichecker running the thirteen dcsketch invariant analyzers over the
// whole module.
//
//	seedcompat     sketch Merge/Subtract/Fold operands must share one Config/seed
//	lockcheck      '// guarded by <mu>' fields need the named mutex held
//	wireerr        no discarded errors on the wire path
//	deltasign      no raw integer→int64 delta conversions into Update APIs
//	allocfree      //lint:allocfree functions stay allocation-free over their call graph
//	scratchsafe    //lint:scratch buffers must not escape their owner
//	poolcheck      sync.Pool Get/Put balance and length-reset discipline
//	lockorder      no cyclic lock acquisition; //lint:lockorder pins declare the order
//	goroleak       every go spawn needs a provable join or shutdown path
//	atomicfield    sync/atomic fields are never accessed plainly and stay aligned
//	msgexhaustive  every wire MsgType is encoded, decoded, tested, printed, routed
//	asmabi         assembly kernels match their Go stubs: NOSPLIT, ABI0 offsets, parity
//	metricname     telemetry series are dcsketch_-prefixed snake_case, registered once
//
// Usage:
//
//	sketchlint ./...
//	sketchlint -analyzers seedcompat,wireerr ./...
//	sketchlint -json ./...
//	sketchlint -inventory ./...
//
// Diagnostics print as file:line:col: analyzer: message, and the exit status
// is 1 when any unsuppressed diagnostic is reported (the CI `check` target
// treats that as failure). With -json, every diagnostic — suppressed ones
// included, flagged "suppressed": true — is emitted as one JSON object per
// line, keeping the module's suppression inventory machine-auditable; after
// the diagnostics, one summary object per analyzer ("summary": true) reports
// its package count, finding and suppression tallies, and elapsed time.
// -inventory combines both in a single pass: text diagnostics for humans,
// then the per-analyzer JSON summary trailers plus one total line, so CI
// gets the gate and the suppression inventory from one module load. The
// //lint: escape hatches and markers are documented in DESIGN.md and the
// internal/analysis package doc.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"dcsketch/internal/analysis"
	"dcsketch/internal/analysis/allocfree"
	"dcsketch/internal/analysis/asmabi"
	"dcsketch/internal/analysis/atomicfield"
	"dcsketch/internal/analysis/deltasign"
	"dcsketch/internal/analysis/goroleak"
	"dcsketch/internal/analysis/lockcheck"
	"dcsketch/internal/analysis/lockorder"
	"dcsketch/internal/analysis/metricname"
	"dcsketch/internal/analysis/msgexhaustive"
	"dcsketch/internal/analysis/poolcheck"
	"dcsketch/internal/analysis/scratchsafe"
	"dcsketch/internal/analysis/seedcompat"
	"dcsketch/internal/analysis/wireerr"
)

// analyzers is the full suite, in report order.
var analyzers = []*analysis.Analyzer{
	seedcompat.Analyzer,
	lockcheck.Analyzer,
	wireerr.Analyzer,
	deltasign.Analyzer,
	allocfree.Analyzer,
	scratchsafe.Analyzer,
	poolcheck.Analyzer,
	lockorder.Analyzer,
	goroleak.Analyzer,
	atomicfield.Analyzer,
	msgexhaustive.Analyzer,
	asmabi.Analyzer,
	metricname.Analyzer,
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// jsonDiagnostic is the -json wire shape: one object per line per diagnostic.
type jsonDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	Position   string `json:"position"` // file:line:col
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// jsonSummary is the -json per-analyzer trailer: counts and timing for the
// suppression inventory (one object per analyzer, after all diagnostics).
type jsonSummary struct {
	Summary    bool    `json:"summary"` // always true, distinguishes the trailer
	Analyzer   string  `json:"analyzer"`
	Packages   int     `json:"packages"`
	Findings   int     `json:"findings"` // unsuppressed diagnostics
	Suppressed int     `json:"suppressed"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// analyzerStats accumulates one analyzer's counters across packages.
type analyzerStats struct {
	packages   int
	findings   int
	suppressed int
	elapsed    time.Duration
}

// run executes the multichecker and returns the process exit code: 0 clean,
// 1 when unsuppressed diagnostics were reported.
func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("sketchlint", flag.ContinueOnError)
	var (
		names     = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		list      = fs.Bool("list", false, "list available analyzers and exit")
		jsonMode  = fs.Bool("json", false, "emit one JSON object per diagnostic (suppressed ones included) instead of text")
		inventory = fs.Bool("inventory", false, "text diagnostics plus the JSON summary trailers and elapsed totals in one pass")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *jsonMode && *inventory {
		return 2, fmt.Errorf("-json and -inventory are mutually exclusive (-inventory already emits the JSON trailers)")
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(w, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	suite, err := selectAnalyzers(*names)
	if err != nil {
		return 2, err
	}
	// Package patterns: sketchlint always analyzes the enclosing module;
	// "./..." (the only supported pattern) is accepted for familiarity.
	for _, pat := range fs.Args() {
		if pat != "./..." && pat != "." {
			return 2, fmt.Errorf("unsupported package pattern %q (sketchlint analyzes the whole module; use ./...)", pat)
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return 2, err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return 2, err
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return 2, err
	}
	mod := analysis.NewModule(pkgs)

	enc := json.NewEncoder(w)
	stats := map[string]*analyzerStats{}
	actionable := 0
	for _, pkg := range pkgs {
		for _, a := range suite {
			st := stats[a.Name]
			if st == nil {
				st = &analyzerStats{}
				stats[a.Name] = st
			}
			start := time.Now()
			ds, err := analysis.Run(a, pkg, mod)
			st.elapsed += time.Since(start)
			st.packages++
			if err != nil {
				return 2, err
			}
			for _, d := range ds {
				pos := pkg.Fset.Position(d.Pos)
				if *jsonMode {
					if err := enc.Encode(jsonLine(pos.String(), d)); err != nil {
						return 2, err
					}
				} else if !d.Suppressed {
					fmt.Fprintf(w, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
				}
				if d.Suppressed {
					st.suppressed++
				} else {
					st.findings++
					actionable++
				}
			}
		}
	}
	if *jsonMode || *inventory {
		var totalSuppressed int
		var totalElapsed time.Duration
		for _, a := range suite {
			st := stats[a.Name]
			totalSuppressed += st.suppressed
			totalElapsed += st.elapsed
			if err := enc.Encode(jsonSummary{
				Summary:    true,
				Analyzer:   a.Name,
				Packages:   st.packages,
				Findings:   st.findings,
				Suppressed: st.suppressed,
				ElapsedMS:  float64(st.elapsed.Microseconds()) / 1000,
			}); err != nil {
				return 2, err
			}
		}
		if *inventory {
			fmt.Fprintf(w, "sketchlint inventory: %d analyzer(s) over %d package(s): %d finding(s), %d suppressed, %.1fms total\n",
				len(suite), len(pkgs), actionable, totalSuppressed,
				float64(totalElapsed.Microseconds())/1000)
		}
	}
	if actionable > 0 {
		if !*jsonMode {
			fmt.Fprintf(w, "sketchlint: %d problem(s) in %d package(s) analyzed\n", actionable, len(pkgs))
		}
		return 1, nil
	}
	return 0, nil
}

// jsonLine shapes one diagnostic for the -json stream.
func jsonLine(position string, d analysis.Diagnostic) jsonDiagnostic {
	return jsonDiagnostic{
		Analyzer:   d.Analyzer,
		Position:   position,
		Message:    d.Message,
		Suppressed: d.Suppressed,
	}
}

// selectAnalyzers resolves the -analyzers flag to a subset of the suite.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
