package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsPositionalArgs(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"./..."}, &b)
	if code != 2 || err == nil {
		t.Fatalf("run(positional) = %d, %v; want exit 2", code, err)
	}
}

func TestRunRejectsUnknownContract(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"-contracts", "bce,asm"}, &b)
	if code != 2 || err == nil || !strings.Contains(err.Error(), `unknown contract "asm"`) {
		t.Fatalf("run(bad -contracts) = %d, %v; want exit 2 naming the word", code, err)
	}
}

func TestRunRejectsMissingPinsFile(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"-require-file", filepath.Join(t.TempDir(), "nope.txt")}, &b)
	if code != 2 || err == nil {
		t.Fatalf("run(missing pins file) = %d, %v; want exit 2", code, err)
	}
}

func TestRunRejectsMalformedPinsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pins.txt")
	if err := os.WriteFile(path, []byte("# ok\nescape pkg:f\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	code, err := run([]string{"-require-file", path}, &b)
	if code != 2 || err == nil || !strings.Contains(err.Error(), `unknown contract "escape"`) {
		t.Fatalf("run(malformed pins) = %d, %v; want exit 2 with contract error", code, err)
	}
}

func TestRunRejectsMalformedRequireFlag(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"-require", "bce missingcolon"}, &b)
	if code != 2 || err == nil || !strings.Contains(err.Error(), "malformed symbol") {
		t.Fatalf("run(bad -require) = %d, %v; want exit 2", code, err)
	}
}
