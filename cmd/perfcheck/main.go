// Command perfcheck ground-truths the repository's performance annotations
// against the compiler's own diagnostics. It compiles every package carrying
// a //lint:allocfree, //lint:bce or //lint:inline function with
//
//	go build -gcflags='-m -m -d=ssa/check_bce/debug=1' <packages>
//
// and fails when the compiler disagrees with an annotation: a heap escape
// inside an allocfree span, a residual IsInBounds/IsSliceInBounds inside a
// bce span, or a "cannot inline" decision on an inline-pinned function. See
// internal/perfcheck for the contract semantics, including the same-line
// //lint:allocok / //lint:bceok acknowledgments and the stale-suppression
// sweep.
//
// Coverage pins keep the proof surface explicit. The committed pins file
// (one "<contract> <pkgpath>:<symbol>" per line, # comments) is passed via
// -require-file; ad-hoc pins via repeatable -require flags in the same
// format. A pin on a function that lost its annotation is a source-located
// violation; a pin naming no function in the module is an operational error.
//
// Usage:
//
//	perfcheck [-require-file pins.txt] [-require '<contract> <pkg>:<sym>' ...]
//	          [-contracts allocfree,bce,inline] [-json]
//
// Exit status: 0 clean, 1 violations, 2 operational errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dcsketch/internal/perfcheck"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("perfcheck", flag.ContinueOnError)
	fs.SetOutput(w)
	var requireFiles, requires multiFlag
	fs.Var(&requireFiles, "require-file", "pins file: one '<contract> <pkgpath>:<symbol>' per line (repeatable)")
	fs.Var(&requires, "require", "inline pin in the pins-file line format (repeatable)")
	contracts := fs.String("contracts", "", "comma-separated contract subset (allocfree,bce,inline); empty = all")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding plus a summary trailer")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments %q (perfcheck always checks the enclosing module)", fs.Args())
	}

	opts := perfcheck.Options{JSON: *jsonOut}
	for _, path := range requireFiles {
		f, err := os.Open(path)
		if err != nil {
			return 2, err
		}
		pins, err := perfcheck.ParsePins(f, path)
		f.Close()
		if err != nil {
			return 2, err
		}
		opts.Pins = append(opts.Pins, pins...)
	}
	for i, req := range requires {
		pins, err := perfcheck.ParsePins(strings.NewReader(req), fmt.Sprintf("-require[%d]", i))
		if err != nil {
			return 2, err
		}
		opts.Pins = append(opts.Pins, pins...)
	}
	if *contracts != "" {
		opts.Contracts = map[perfcheck.Contract]bool{}
		for _, word := range strings.Split(*contracts, ",") {
			c, ok := perfcheck.ParseContract(strings.TrimSpace(word))
			if !ok {
				return 2, fmt.Errorf("-contracts: unknown contract %q (want allocfree, bce or inline)", word)
			}
			opts.Contracts[c] = true
		}
	}
	return perfcheck.Main(opts, w)
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}
