// Command tracegen generates synthetic packet traces for the DDoS monitor:
// mixes of legitimate background traffic, a flash crowd, and a spoofed
// SYN-flood attack, written in the repository's binary or text trace format.
//
// Usage:
//
//	tracegen -o attack.trace -zombies 5000 -crowd 10000 -background 50000
//	tracegen -o attack.txt -format text -victim 203.0.113.7 -crowd-dest 198.51.100.1
//
// The generated trace contains raw TCP packet records (SYN / SYN-ACK / ACK),
// suitable for cmd/ddosmon or any tcpflow-based pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dcsketch/internal/hashing"
	"dcsketch/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out        = fs.String("o", "-", "output file (default stdout)")
		format     = fs.String("format", "binary", "trace format: binary, text or pcap")
		zombies    = fs.Int("zombies", 2000, "distinct spoofed sources attacking the victim")
		crowd      = fs.Int("crowd", 4000, "flash-crowd clients (handshakes complete)")
		background = fs.Int("background", 20000, "legitimate background connections")
		victimStr  = fs.String("victim", "203.0.113.7", "SYN-flood victim address")
		crowdStr   = fs.String("crowd-dest", "198.51.100.1", "flash-crowd destination address")
		seed       = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	victim, err := trace.ParseIPv4(*victimStr)
	if err != nil {
		return err
	}
	crowdDest, err := trace.ParseIPv4(*crowdStr)
	if err != nil {
		return err
	}

	recs := generate(params{
		zombies:    *zombies,
		crowd:      *crowd,
		background: *background,
		victim:     victim,
		crowdDest:  crowdDest,
		seed:       *seed,
	})

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	w, err := trace.NewWriter(*format, f)
	if err != nil {
		return err
	}
	if err := trace.WriteAll(w, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d packet records\n", len(recs))
	return nil
}

type params struct {
	zombies, crowd, background int
	victim, crowdDest          uint32
	seed                       uint64
}

// Connection kinds used by the arrival schedule.
const (
	kindBackground = iota
	kindCrowd
	kindAttack
)

// generate builds the packet-level scenario: every flash-crowd and
// background connection performs a full three-way handshake; attack SYNs
// are never acknowledged. Connection arrivals of all three kinds are
// shuffled across the whole trace horizon — the attack ramps up *during*
// normal traffic, which is what a monitor actually observes — and records
// are sorted into time order.
func generate(p params) []trace.Record {
	rng := hashing.NewSplitMix64(p.seed)
	srcPerm := hashing.NewPerm32(p.seed ^ 0xabcd)

	// Build the arrival schedule: one slot per connection, shuffled.
	kinds := make([]uint8, 0, p.background+p.crowd+p.zombies)
	for i := 0; i < p.background; i++ {
		kinds = append(kinds, kindBackground)
	}
	for i := 0; i < p.crowd; i++ {
		kinds = append(kinds, kindCrowd)
	}
	for i := 0; i < p.zombies; i++ {
		kinds = append(kinds, kindAttack)
	}
	for i := len(kinds) - 1; i > 0; i-- {
		j := int(rng.Next() % uint64(i+1))
		kinds[i], kinds[j] = kinds[j], kinds[i]
	}

	var recs []trace.Record
	now := uint64(0)
	step := func() uint64 {
		now += 20 + rng.Next()%80 // 20-100 µs between client arrivals
		return now
	}
	handshake := func(src, dst uint32, sport, dport uint16) {
		t := step()
		recs = append(recs,
			trace.Record{Time: t, Src: src, Dst: dst, SrcPort: sport, DstPort: dport, Flags: trace.FlagSYN},
			trace.Record{Time: t + 200, Src: dst, Dst: src, SrcPort: dport, DstPort: sport, Flags: trace.FlagSYN | trace.FlagACK},
			trace.Record{Time: t + 400, Src: src, Dst: dst, SrcPort: sport, DstPort: dport, Flags: trace.FlagACK},
		)
	}

	var crowdIdx, zombieIdx uint32
	for _, kind := range kinds {
		switch kind {
		case kindBackground:
			src := srcPerm.Apply(uint32(rng.Next() % uint64(p.background/4+1)))
			dst := 0x0a000000 + uint32(rng.Next()%200)
			handshake(src, dst, uint16(1024+rng.Next()%60000), 80)
		case kindCrowd:
			src := srcPerm.Apply(0x40000000 + crowdIdx)
			crowdIdx++
			handshake(src, p.crowdDest, uint16(1024+rng.Next()%60000), 443)
		default:
			src := srcPerm.Apply(0x80000000 + zombieIdx)
			zombieIdx++
			recs = append(recs, trace.Record{
				Time: step(), Src: src, Dst: p.victim,
				SrcPort: uint16(1024 + rng.Next()%60000), DstPort: 443,
				Flags: trace.FlagSYN,
			})
		}
	}
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].Time < recs[b].Time })
	return recs
}
