package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcsketch/internal/trace"
)

func TestGenerateShape(t *testing.T) {
	p := params{
		zombies:    200,
		crowd:      300,
		background: 400,
		victim:     0xCB007107,
		crowdDest:  0xC6336401,
		seed:       1,
	}
	recs := generate(p)
	// crowd+background are 3-packet handshakes, zombies 1 SYN each.
	want := (300+400)*3 + 200
	if len(recs) != want {
		t.Fatalf("generated %d records, want %d", len(recs), want)
	}
	// Time-sorted.
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatalf("records out of time order at %d", i)
		}
	}
	// Attack SYNs are never acknowledged: no ACK-only packet ever
	// targets the victim from an attack source, and victim SYNs exist.
	victimSYNs := 0
	for _, r := range recs {
		if r.Dst == p.victim && r.Flags == trace.FlagSYN {
			victimSYNs++
		}
		if r.Src != p.victim && r.Dst == p.victim && r.Flags == trace.FlagACK {
			t.Fatalf("attack flow completed a handshake: %+v", r)
		}
	}
	if victimSYNs != 200 {
		t.Fatalf("victim received %d SYNs, want 200", victimSYNs)
	}
	// The attack must be interleaved with normal traffic, not appended:
	// some attack SYN must appear in the first third of the trace.
	early := false
	for _, r := range recs[:len(recs)/3] {
		if r.Dst == p.victim {
			early = true
			break
		}
	}
	if !early {
		t.Fatal("attack not interleaved: no victim packet in the first third")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := params{zombies: 50, crowd: 50, background: 50, victim: 1, crowdDest: 2, seed: 9}
	a, b := generate(p), generate(p)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestRunWritesReadableTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trace")
	err := run([]string{"-o", out, "-zombies", "10", "-crowd", "10", "-background", "10"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadAll(trace.NewBinaryReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10*3+10*3+10 {
		t.Fatalf("trace holds %d records", len(recs))
	}
}

func TestRunTextFormat(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.txt")
	err := run([]string{"-o", out, "-format", "text", "-zombies", "5", "-crowd", "5", "-background", "5"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadAll(trace.NewTextReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 35 {
		t.Fatalf("text trace holds %d records", len(recs))
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-victim", "not-an-ip"}); err == nil {
		t.Fatal("bad victim address accepted")
	}
	if err := run([]string{"-format", "xml", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Fatal("bad format accepted")
	}
}
