package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dcsketch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkUpdateBasic    	 1756963	       686.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkUpdateBasic    	 1760701	       680.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkUpdateBasic    	 1644099	       758.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkQueryTracking-4	 1604190	       744.4 ns/op	     448 B/op	       4 allocs/op
PASS
ok  	dcsketch	49.186s
`

func TestParse(t *testing.T) {
	rec, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Context["goos"] != "linux" || rec.Context["cpu"] == "" {
		t.Fatalf("context not captured: %+v", rec.Context)
	}

	ub, ok := rec.Benchmarks["BenchmarkUpdateBasic"]
	if !ok {
		t.Fatalf("BenchmarkUpdateBasic missing: %+v", rec.Benchmarks)
	}
	if ub.Runs != 3 {
		t.Fatalf("runs = %d, want 3", ub.Runs)
	}
	if ub.NsPerOp != 686.1 { // median of {680.5, 686.1, 758.9}
		t.Fatalf("ns/op = %v, want median 686.1", ub.NsPerOp)
	}

	// The -4 CPU suffix is stripped so records from different GOMAXPROCS
	// machines stay comparable.
	qt, ok := rec.Benchmarks["BenchmarkQueryTracking"]
	if !ok {
		t.Fatalf("CPU suffix not stripped: %+v", rec.Benchmarks)
	}
	if qt.BytesPerOp != 448 || qt.AllocsPerOp != 4 {
		t.Fatalf("benchmem metrics not captured: %+v", qt)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	rec, err := Parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 0 {
		t.Fatalf("phantom benchmarks parsed: %+v", rec.Benchmarks)
	}
}

func mkRecord(pairs map[string]float64) *Record {
	rec := &Record{Benchmarks: map[string]Metrics{}}
	for name, ns := range pairs {
		rec.Benchmarks[name] = Metrics{Runs: 1, NsPerOp: ns}
	}
	return rec
}

func TestCompareWithinBudget(t *testing.T) {
	base := mkRecord(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200})
	cur := mkRecord(map[string]float64{"BenchmarkA": 105, "BenchmarkB": 150})
	report, failures := Compare(base, cur, 0.10)
	if failures != 0 {
		t.Fatalf("failures = %d, report:\n%s", failures, report)
	}
}

func TestCompareRegression(t *testing.T) {
	base := mkRecord(map[string]float64{"BenchmarkA": 100})
	cur := mkRecord(map[string]float64{"BenchmarkA": 111})
	report, failures := Compare(base, cur, 0.10)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1; report:\n%s", failures, report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report lacks FAIL marker:\n%s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := mkRecord(map[string]float64{"BenchmarkA": 100, "BenchmarkGone": 50})
	cur := mkRecord(map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 10})
	report, failures := Compare(base, cur, 0.10)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (missing benchmark); report:\n%s", failures, report)
	}
	if !strings.Contains(report, "missing") || !strings.Contains(report, "(new)") {
		t.Fatalf("report lacks missing/new markers:\n%s", report)
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	base := &Record{Benchmarks: map[string]Metrics{
		"BenchmarkZeroAlloc": {Runs: 1, NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkFewAllocs": {Runs: 1, NsPerOp: 100, AllocsPerOp: 10},
	}}

	// Within budget: zero stays zero, 10 → 11 is exactly +10%.
	cur := &Record{Benchmarks: map[string]Metrics{
		"BenchmarkZeroAlloc": {Runs: 1, NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkFewAllocs": {Runs: 1, NsPerOp: 100, AllocsPerOp: 11},
	}}
	if report, failures := Compare(base, cur, 0.10); failures != 0 {
		t.Fatalf("failures = %d, want 0; report:\n%s", failures, report)
	}

	// A zero-alloc baseline admits no allocation at all, regardless of the
	// ns/op tolerance; the nonzero baseline fails past the fraction.
	cur = &Record{Benchmarks: map[string]Metrics{
		"BenchmarkZeroAlloc": {Runs: 1, NsPerOp: 100, AllocsPerOp: 1},
		"BenchmarkFewAllocs": {Runs: 1, NsPerOp: 100, AllocsPerOp: 12},
	}}
	report, failures := Compare(base, cur, 0.10)
	if failures != 2 {
		t.Fatalf("failures = %d, want 2; report:\n%s", failures, report)
	}
	if strings.Count(report, "FAIL (allocs/op)") != 2 {
		t.Fatalf("report lacks allocs/op FAIL markers:\n%s", report)
	}
}

func TestAllocsRegressed(t *testing.T) {
	tests := []struct {
		base, cur, max float64
		want           bool
	}{
		{0, 0, 0.10, false},
		{0, 0.5, 0.10, true}, // zero baseline tolerates nothing
		{10, 11, 0.10, false},
		{10, 11.5, 0.10, true},
		{4, 4, 0, false},
		{4, 5, 0, true},
	}
	for _, tt := range tests {
		if got := allocsRegressed(tt.base, tt.cur, tt.max); got != tt.want {
			t.Errorf("allocsRegressed(%v, %v, %v) = %v, want %v", tt.base, tt.cur, tt.max, got, tt.want)
		}
	}
}

func TestRunParseAndCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/base.json"
	curPath := dir + "/cur.json"

	var out strings.Builder
	if err := run([]string{"parse", "-o", basePath}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"parse", "-o", curPath}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	// Identical records: gate passes.
	if err := run([]string{"compare", "-baseline", basePath, "-current", curPath}, nil, &out); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}
	// Tighten the budget to a negative margin is invalid input.
	if err := run([]string{"compare", "-baseline", basePath, "-current", curPath, "-max-regress", "x"}, nil, &out); err == nil {
		t.Fatal("bad -max-regress accepted")
	}
}
