// Command benchcheck turns raw `go test -bench` output into a stable JSON
// record and gates performance regressions against a committed baseline —
// a minimal benchstat stand-in using only the standard library.
//
// Two subcommands:
//
//	benchcheck parse [-o out.json] [bench.out]
//	    Parse benchmark output (stdin when no file is given), reduce
//	    repeated runs of each benchmark (-count N) to per-metric medians,
//	    and write the JSON record.
//
//	benchcheck compare -baseline a.json -current b.json [-max-regress 0.10]
//	    Compare two records: exit non-zero when any benchmark present in
//	    the baseline is missing from the current record, has regressed by
//	    more than the allowed fraction in ns/op, or allocates more per op
//	    than the baseline tolerates (a 0 allocs/op baseline admits no
//	    allocation at all).
//
// Medians (not means) absorb the occasional descheduled run on shared CI
// hardware; the committed baseline makes the gate reproducible without
// rerunning the seed revision.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics holds one benchmark's median results across repeated runs.
type Metrics struct {
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Record is the JSON document benchcheck reads and writes.
type Record struct {
	// Context mirrors the `go test` preamble (goos, goarch, cpu, pkg).
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks maps benchmark name (CPU suffix stripped) to medians.
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchcheck parse|compare [flags]")
	}
	switch args[0] {
	case "parse":
		return runParse(args[1:], stdin, stdout)
	case "compare":
		return runCompare(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want parse or compare)", args[0])
	}
}

func runParse(args []string, stdin io.Reader, stdout io.Writer) error {
	out := ""
	var inputs []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-o":
			i++
			if i >= len(args) {
				return fmt.Errorf("parse: -o needs a file")
			}
			out = args[i]
		default:
			inputs = append(inputs, args[i])
		}
	}
	var r io.Reader = stdin
	if len(inputs) == 1 {
		f, err := os.Open(inputs[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	} else if len(inputs) > 1 {
		return fmt.Errorf("parse: at most one input file")
	}

	rec, err := Parse(r)
	if err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("parse: no benchmark lines found")
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// benchLine matches e.g.
//
//	BenchmarkUpdateBasic-4   1756963   686.1 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// Parse reads `go test -bench` output and reduces repeated runs to medians.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{Context: map[string]string{}, Benchmarks: map[string]Metrics{}}
	type samples struct{ ns, bytes, allocs []float64 }
	all := map[string]*samples{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rec.Context[key] = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		s := all[name]
		if s == nil {
			s = &samples{}
			all[name] = s
		}
		fields := strings.Fields(rest)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %s: bad value %q: %v", name, fields[i], err)
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "B/op":
				s.bytes = append(s.bytes, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for name, s := range all {
		if len(s.ns) == 0 {
			continue
		}
		rec.Benchmarks[name] = Metrics{
			Runs:        len(s.ns),
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: median(s.allocs),
		}
	}
	return rec, nil
}

// median returns the middle sample (mean of the middle two for even
// lengths); zero for an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func runCompare(args []string, stdout io.Writer) error {
	var basePath, curPath string
	maxRegress := 0.10
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-baseline":
			i++
			if i >= len(args) {
				return fmt.Errorf("compare: -baseline needs a file")
			}
			basePath = args[i]
		case "-current":
			i++
			if i >= len(args) {
				return fmt.Errorf("compare: -current needs a file")
			}
			curPath = args[i]
		case "-max-regress":
			i++
			if i >= len(args) {
				return fmt.Errorf("compare: -max-regress needs a value")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 {
				return fmt.Errorf("compare: bad -max-regress %q", args[i])
			}
			maxRegress = v
		default:
			return fmt.Errorf("compare: unknown flag %q", args[i])
		}
	}
	if basePath == "" || curPath == "" {
		return fmt.Errorf("compare: -baseline and -current are required")
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}

	report, failures := Compare(base, cur, maxRegress)
	fmt.Fprint(stdout, report)
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", failures, maxRegress*100)
	}
	return nil
}

func load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rec, nil
}

// Compare renders a benchstat-style delta table and counts failures: a
// benchmark fails when it is missing from cur, its ns/op exceeds the
// baseline by more than maxRegress, or its allocs/op grows past the same
// tolerance. Allocation counts are deterministic (unlike wall time), so a
// zero-alloc baseline fails on ANY current allocation — that is exactly the
// contract the //lint:allocfree annotations promise, measured at run time.
func Compare(base, cur *Record, maxRegress float64) (string, int) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	failures := 0
	fmt.Fprintf(&b, "%-28s %14s %14s %9s %12s %12s\n",
		"benchmark", "base ns/op", "cur ns/op", "delta", "base allocs", "cur allocs")
	for _, name := range names {
		bm := base.Benchmarks[name]
		cm, ok := cur.Benchmarks[name]
		if !ok {
			failures++
			fmt.Fprintf(&b, "%-28s %14.1f %14s %9s %12s %12s  FAIL (missing)\n",
				name, bm.NsPerOp, "-", "-", "-", "-")
			continue
		}
		delta := 0.0
		if bm.NsPerOp > 0 {
			delta = (cm.NsPerOp - bm.NsPerOp) / bm.NsPerOp
		}
		status := ""
		if delta > maxRegress {
			failures++
			status = "  FAIL"
		}
		if allocsRegressed(bm.AllocsPerOp, cm.AllocsPerOp, maxRegress) {
			failures++
			status += "  FAIL (allocs/op)"
		}
		fmt.Fprintf(&b, "%-28s %14.1f %14.1f %+8.1f%% %12.1f %12.1f%s\n",
			name, bm.NsPerOp, cm.NsPerOp, delta*100, bm.AllocsPerOp, cm.AllocsPerOp, status)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(&b, "%-28s %14s %14.1f %9s %12s %12.1f  (new)\n",
				name, "-", cur.Benchmarks[name].NsPerOp, "-", "-", cur.Benchmarks[name].AllocsPerOp)
		}
	}
	return b.String(), failures
}

// allocsRegressed reports whether cur allocations exceed the baseline by
// more than the allowed fraction. A zero baseline tolerates nothing: going
// from 0 to any allocs/op is always a regression.
func allocsRegressed(base, cur, maxRegress float64) bool {
	if base == 0 {
		return cur > 0
	}
	return cur > base*(1+maxRegress)
}
