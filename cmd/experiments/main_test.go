package main

import (
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nonsense"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunScenarioTable(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-run", "scenarios", "-seed", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Robustness", "victim", "crowd-server"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig8CSV(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-run", "fig8a", "-scale", "0.003", "-seeds", "1", "-csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "z,k,recall\n") {
		t.Fatalf("csv output malformed:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Fatalf("csv output too short:\n%s", out)
	}
}

func TestRunSpace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "space"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "96000000") {
		t.Fatalf("space table missing the paper's brute-force figure:\n%s", sb.String())
	}
}
