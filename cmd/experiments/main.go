// Command experiments regenerates every table and figure of the paper's
// experimental study (§6) plus the repository's ablations.
//
// Usage:
//
//	experiments -run all                    # everything, laptop scale
//	experiments -run fig8a,fig8b -scale 0.1 # accuracy figures, bigger runs
//	experiments -run fig9 -updates 4000000  # paper-scale timing sweep
//	experiments -run space,table2,scenarios,ablations
//	experiments -run fig8a -csv             # emit CSV instead of tables
//
// -scale 1.0 reproduces the paper's full U = 8·10^6, d = 5·10^4 setting
// (several minutes and ~1 GiB); the default 0.02 preserves the U/d ratio and
// finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dcsketch/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runList = fs.String("run", "all", "comma-separated experiments: fig8a,fig8b,fig9,space,table2,threshold,latency,deployment,scenarios,ablations,all")
		scale   = fs.Float64("scale", 0.02, "workload scale relative to the paper's U=8e6, d=5e4")
		seeds   = fs.Int("seeds", 5, "random seeds averaged per accuracy point")
		updates = fs.Int("updates", 200_000, "stream length for timing experiments (paper: 4e6)")
		seed    = fs.Uint64("seed", 1, "base random seed")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := make(map[string]bool)
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	known := map[string]bool{
		"fig8a": true, "fig8b": true, "fig9": true, "space": true,
		"table2": true, "scenarios": true, "ablations": true,
		"threshold": true, "latency": true, "deployment": true, "all": true,
	}
	for name := range want {
		if !known[name] {
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	emit := func(tables ...*experiment.Table) error {
		for _, t := range tables {
			var err error
			if *csv {
				err = t.WriteCSV(w)
			} else {
				err = t.Render(w)
			}
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}

	if all || want["fig8a"] || want["fig8b"] {
		points, err := experiment.Fig8(experiment.Fig8Params{
			Scale: *scale, Seeds: *seeds, BaseSeed: *seed,
		})
		if err != nil {
			return err
		}
		recall, relErr := experiment.Fig8Tables(points)
		if all || want["fig8a"] {
			if err := emit(recall); err != nil {
				return err
			}
		}
		if all || want["fig8b"] {
			if err := emit(relErr); err != nil {
				return err
			}
		}
	}
	if all || want["fig9"] {
		points, err := experiment.Fig9(experiment.Fig9Params{Updates: *updates, Seed: *seed})
		if err != nil {
			return err
		}
		if err := emit(experiment.Fig9Table(points)); err != nil {
			return err
		}
	}
	if all || want["space"] {
		rows, err := experiment.Space(experiment.SpaceParams{Seed: *seed})
		if err != nil {
			return err
		}
		if err := emit(experiment.SpaceTable(rows)); err != nil {
			return err
		}
	}
	if all || want["table2"] {
		rows, err := experiment.Table2(experiment.Table2Params{Updates: *updates, Seed: *seed})
		if err != nil {
			return err
		}
		if err := emit(experiment.Table2Table(rows)); err != nil {
			return err
		}
	}
	if all || want["threshold"] {
		points, err := experiment.Threshold(experiment.ThresholdParams{Scale: *scale, Seed: *seed})
		if err != nil {
			return err
		}
		if err := emit(experiment.ThresholdTable(points)); err != nil {
			return err
		}
	}
	if all || want["latency"] {
		points, err := experiment.Latency(experiment.LatencyParams{Seed: *seed})
		if err != nil {
			return err
		}
		if err := emit(experiment.LatencyTable(points)); err != nil {
			return err
		}
	}
	if all || want["deployment"] {
		rows, err := experiment.Deployment(experiment.DeploymentParams{Seed: *seed})
		if err != nil {
			return err
		}
		if err := emit(experiment.DeploymentTable(rows)); err != nil {
			return err
		}
	}
	if all || want["scenarios"] {
		res, err := experiment.Scenario(experiment.ScenarioParams{Seed: *seed})
		if err != nil {
			return err
		}
		if err := emit(experiment.ScenarioTable(res)); err != nil {
			return err
		}
	}
	if all || want["ablations"] {
		p := experiment.AblationParams{Scale: *scale, Seed: *seed}
		st, err := experiment.AblateSampleTarget(p)
		if err != nil {
			return err
		}
		fp, err := experiment.AblateFingerprint(p)
		if err != nil {
			return err
		}
		rec, err := experiment.AblateRecovery(p)
		if err != nil {
			return err
		}
		if err := emit(experiment.AblationTables(st, fp, rec)...); err != nil {
			return err
		}
		est, err := experiment.AblateEstimator(p)
		if err != nil {
			return err
		}
		if err := emit(experiment.EstimatorTable(est)); err != nil {
			return err
		}
	}
	return nil
}
