package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"dcsketch/internal/debugapi"
	"dcsketch/internal/export"
	"dcsketch/internal/server"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/tracelog"
	"dcsketch/internal/wire"
)

// startDaemon runs the daemon with the given extra flags and returns its
// bound addresses. It is stopped via t.Cleanup.
func startDaemon(t *testing.T, extra ...string) (serveAddr, debugAddr net.Addr) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	readyCh := make(chan [2]net.Addr, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-status-every", "0"}, extra...)
	go func() {
		done <- run(args, stop, func(sa, da net.Addr) { readyCh <- [2]net.Addr{sa, da} })
	}()
	t.Cleanup(func() {
		stop <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Error(err)
			}
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop")
		}
	})
	select {
	case addrs := <-readyCh:
		return addrs[0], addrs[1]
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	panic("unreachable")
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

// metricValue extracts the value of an exact series name from Prometheus
// text exposition; -1 if the series is absent.
func metricValue(body []byte, series string) float64 {
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, series)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// TestTelemetrySmoke is the end-to-end scrape: start the daemon with
// -debug-addr, drive traffic through a real client connection, and check
// the /metrics exposition parses and reports the activity, expvar mirrors
// it, and pprof answers.
func TestTelemetrySmoke(t *testing.T) {
	serveAddr, debugAddr := startDaemon(t, "-debug-addr", "127.0.0.1:0", "-check-interval", "64", "-min-frequency", "10")
	if debugAddr == nil {
		t.Fatal("no debug address despite -debug-addr")
	}

	c, err := server.Dial(serveAddr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	batch := make([]wire.Update, 500)
	for i := range batch {
		batch[i] = wire.Update{Src: uint32(i), Dst: 443, Delta: 1}
	}
	if err := c.SendUpdates(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopK(3); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, "http://"+debugAddr.String()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := telemetry.ValidatePrometheusText(body); err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, body)
	}
	for series, min := range map[string]float64{
		"dcsketch_server_updates_total":                   500,
		`dcsketch_server_frames_total{type="updates"}`:    1,
		`dcsketch_server_frames_total{type="topk_query"}`: 1,
		"dcsketch_monitor_updates_total":                  500,
		"dcsketch_monitor_checks_total":                   1,
		"dcsketch_sketch_queries_total":                   1,
		"dcsketch_sketch_decode_singletons_total":         1,
		"dcsketch_sketch_decode_failures_total":           1,
		"dcsketch_sketch_levels_nonempty":                 1,
		"dcsketch_sketch_sample_size":                     1,
		"dcsketch_server_query_latency_ns_count":          1,
		"dcsketch_monitor_check_latency_ns_count":         1,
		"dcsketch_runtime_heap_live_bytes":                1,
		"dcsketch_runtime_goroutines":                     1,
	} {
		if got := metricValue(body, series); got < min {
			t.Errorf("%s = %v, want >= %v", series, got, min)
		}
	}
	// Zero-valued series are still exported (a scrape must show the full
	// inventory, not only what already happened).
	for _, series := range []string{
		"dcsketch_sketch_checksum_rejects_total",
		"dcsketch_sketch_structural_rejects_total",
		"dcsketch_server_oversized_frames_total",
	} {
		if got := metricValue(body, series); got != 0 {
			t.Errorf("%s = %v, want present and 0", series, got)
		}
	}

	code, body = httpGet(t, "http://"+debugAddr.String()+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	for _, want := range []string{`"dcsketch"`, `"dcsketch_server_updates_total":500`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/debug/vars missing %s", want)
		}
	}

	code, _ = httpGet(t, "http://"+debugAddr.String()+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

// TestDebugTraceAndAlertsSmoke drives sequenced traffic through a real
// exporter and an alerting flood through the plain client, then checks the
// flight-recorder endpoints answer: /debug/trace reconstructs the batch's
// server-side lifecycle and /debug/alerts serves the evidence ledger.
func TestDebugTraceAndAlertsSmoke(t *testing.T) {
	serveAddr, debugAddr := startDaemon(t, "-debug-addr", "127.0.0.1:0", "-check-interval", "64", "-min-frequency", "10")

	// Sequenced path: a real exporter gives the batch a (session, seq)
	// identity the recorder keys on.
	exp, err := export.New(export.Config{Addr: serveAddr.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	batch := make([]wire.Update, 64)
	for i := range batch {
		batch[i] = wire.Update{Src: uint32(i), Dst: 80, Delta: 1}
	}
	if err := exp.Export(batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for exp.Stats().BatchesAcked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never acked")
		}
		time.Sleep(5 * time.Millisecond)
	}

	url := fmt.Sprintf("http://%s/debug/trace?session=%d&seq=1", debugAddr, exp.SessionID())
	code, body := httpGet(t, url)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d: %s", code, body)
	}
	var dump tracelog.Dump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("trace dump: %v\n%s", err, body)
	}
	stages := map[string]bool{}
	for _, ev := range dump.Events {
		stages[ev.Stage] = true
	}
	for _, want := range []string{"server-decode", "server-apply", "server-ack"} {
		if !stages[want] {
			t.Errorf("trace of acked batch missing stage %s: %+v", want, dump.Events)
		}
	}
	if code, _ := httpGet(t, "http://"+debugAddr.String()+"/debug/trace?session=nope"); code != http.StatusBadRequest {
		t.Errorf("malformed trace query status %d, want 400", code)
	}

	// Alerting path: flood one destination past the -min-frequency floor.
	c, err := server.Dial(serveAddr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flood := make([]wire.Update, 500)
	for i := range flood {
		flood[i] = wire.Update{Src: uint32(1000 + i), Dst: 443, Delta: 1}
	}
	if err := c.SendUpdates(flood); err != nil {
		t.Fatal(err)
	}
	code, body = httpGet(t, "http://"+debugAddr.String()+"/debug/alerts")
	if code != http.StatusOK {
		t.Fatalf("/debug/alerts status %d", code)
	}
	var evs []debugapi.EvidenceRecord
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("alerts list: %v\n%s", err, body)
	}
	if len(evs) == 0 {
		t.Fatal("flood raised no evidence")
	}
	found := false
	for _, ev := range evs {
		if ev.Dest == 443 && len(ev.TopK) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no evidence names the victim: %s", body)
	}
	code, body = httpGet(t, fmt.Sprintf("http://%s/debug/alerts/%d", debugAddr, evs[0].ID))
	if code != http.StatusOK {
		t.Fatalf("/debug/alerts/{id} status %d: %s", code, body)
	}
	var one debugapi.EvidenceRecord
	if err := json.Unmarshal(body, &one); err != nil || one.ID != evs[0].ID {
		t.Fatalf("by-id entry mismatch: %v %s", err, body)
	}
}
