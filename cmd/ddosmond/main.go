// Command ddosmond is the DDoS monitor daemon: it listens for the wire
// protocol (flow-update batches, shipped sketches, top-k queries) from edge
// exporters, maintains the shared Tracking Distinct-Count Sketch, and prints
// alerts. This is the Fig. 1 DDoS MONITOR as a process.
//
// Usage:
//
//	ddosmond -listen 127.0.0.1:7171 -min-frequency 200
//
// Feed it with cmd/flowexport (replaying a trace) or any client speaking
// internal/wire. Stop with SIGINT/SIGTERM for a graceful drain.
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/debugapi"
	"dcsketch/internal/monitor"
	"dcsketch/internal/server"
	"dcsketch/internal/snapshot"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/trace"
	"dcsketch/internal/tracelog"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sigs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ddosmond:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a value arrives on stop. If ready
// is non-nil it is called once with the bound addresses (debugAddr is nil
// unless -debug-addr was given) — a seam for tests to discover ports.
func run(args []string, stop <-chan os.Signal, ready func(serveAddr, debugAddr net.Addr)) error {
	fs := flag.NewFlagSet("ddosmond", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:7171", "listen address")
		k        = fs.Int("k", 10, "top-k destinations tracked per check")
		minFreq  = fs.Int64("min-frequency", 64, "absolute alert floor (distinct sources)")
		interval = fs.Int("check-interval", 4096, "flow updates between tracking checks")
		seed     = fs.Uint64("seed", 1, "sketch seed (edges shipping sketches must match)")
		buckets  = fs.Int("s", 128, "second-level hash-table buckets (s)")
		tables   = fs.Int("r", 3, "second-level hash tables (r)")
		status   = fs.Duration("status-every", 10*time.Second, "status line period (0 disables)")
		debug    = fs.String("debug-addr", "", "telemetry listen address serving /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof (empty disables)")
		snapDir  = fs.String("snapshot-dir", "", "directory for crash-safe state snapshots: restored on boot, written periodically and on graceful shutdown (empty disables)")
		snapSecs = fs.Duration("snapshot-interval", 30*time.Second, "period between crash-safe snapshots when -snapshot-dir is set (0 disables the timer; shutdown still flushes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Monitor: monitor.Config{
			Sketch:        dcs.Config{Tables: *tables, Buckets: *buckets, Seed: *seed},
			K:             *k,
			CheckInterval: *interval,
			MinFrequency:  *minFreq,
		},
		OnAlert: func(a monitor.Alert) {
			fmt.Printf("ALERT update=%d dest=%s est_distinct_sources=%d baseline=%.1f\n",
				a.AtUpdate, trace.FormatIPv4(a.Dest), a.Estimated, a.Baseline)
		},
	})
	if err != nil {
		return err
	}

	// Restore precedes Listen: the replay horizons must be in place before
	// the first exporter's hello, or a retransmitted batch the dead process
	// already acked would be applied twice. A missing file is a fresh
	// start; a corrupt one is a hard error — silently starting empty would
	// break the very acked⇒durable promise the snapshot exists for.
	snapPath := ""
	if *snapDir != "" {
		snapPath = filepath.Join(*snapDir, "ddosmond.snapshot")
		st, err := snapshot.ReadFile(snapPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// fresh start
		case err != nil:
			return fmt.Errorf("restore %s: %w", snapPath, err)
		default:
			if err := srv.RestoreState(st); err != nil {
				return fmt.Errorf("restore %s: %w", snapPath, err)
			}
			fmt.Printf("restored snapshot %s (%d sessions)\n", snapPath, restoredSessions(st))
		}
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("ddosmond listening on %s (r=%d s=%d seed=%d)\n", addr, *tables, *buckets, *seed)

	var debugAddr net.Addr
	if *debug != "" {
		// Bind before publishing so a daemon that fails to start does not
		// claim the process-wide expvar slot.
		ln, err := net.Listen("tcp", *debug)
		if err != nil {
			srv.Shutdown()
			return fmt.Errorf("debug listen %s: %w", *debug, err)
		}
		reg := telemetry.NewRegistry()
		srv.RegisterTelemetry(reg)
		telemetry.RegisterRuntimeMetrics(reg)
		reg.PublishExpvar("dcsketch")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/debug/trace", tracelog.TraceHandler(srv.Tracer()))
		mux.Handle("/debug/alerts", debugapi.AlertsHandler(srv.Monitor()))
		mux.Handle("/debug/alerts/", debugapi.AlertsHandler(srv.Monitor()))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Handler: mux}
		defer serveDebug(dsrv, ln)()
		debugAddr = ln.Addr()
		fmt.Printf("telemetry on http://%s/metrics (expvar at /debug/vars, profiles at /debug/pprof, batch traces at /debug/trace, alert evidence at /debug/alerts)\n", debugAddr)
	}
	if ready != nil {
		ready(addr, debugAddr)
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		defer ticker.Stop()
		tick = ticker.C
	}
	var snapTick <-chan time.Time
	if snapPath != "" && *snapSecs > 0 {
		snapTicker := time.NewTicker(*snapSecs)
		defer snapTicker.Stop()
		snapTick = snapTicker.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("shutting down...")
			// Shutdown first, snapshot second: Shutdown drains every
			// connection handler and the shard queues, so the final flush
			// captures every acked batch — SIGTERM mid-ingest loses
			// nothing that was acknowledged.
			srv.Shutdown()
			if snapPath != "" {
				if err := writeSnapshot(srv, snapPath); err != nil {
					fmt.Fprintln(os.Stderr, "ddosmond: final snapshot:", err)
				} else {
					fmt.Printf("snapshot flushed to %s\n", snapPath)
				}
			}
			printStatus(srv, *k)
			return nil
		case <-snapTick:
			if err := writeSnapshot(srv, snapPath); err != nil {
				fmt.Fprintln(os.Stderr, "ddosmond: snapshot:", err)
			}
		case <-tick:
			printStatus(srv, *k)
		}
	}
}

// writeSnapshot captures the server's recovery state and writes it
// atomically (tmp + rename) so a crash mid-write leaves the previous
// snapshot intact.
func writeSnapshot(srv *server.Server, path string) error {
	st, err := srv.SnapshotState()
	if err != nil {
		return err
	}
	return snapshot.WriteFile(path, st)
}

// restoredSessions counts the replay horizons in a snapshot, for the boot
// log line.
func restoredSessions(st *snapshot.State) int {
	if st.Sessions == nil {
		return 0
	}
	return len(st.Sessions.Horizons)
}

// serveDebug serves the telemetry mux on ln in the background and returns a
// stop function that closes the server and then waits for the serve
// goroutine to exit, so a graceful shutdown never strands the acceptor
// mid-request.
func serveDebug(dsrv *http.Server, ln net.Listener) (stop func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = dsrv.Serve(ln)
	}()
	return func() {
		_ = dsrv.Close()
		<-done
	}
}

func printStatus(srv *server.Server, k int) {
	st := srv.Stats()
	fmt.Printf("status: %d updates in %d batches, %d queries, %d sketches merged, %d protocol errors\n",
		st.Updates, st.Batches, st.Queries, st.Sketches, st.ProtocolErrors)
	for i, e := range srv.TopK(k) {
		marker := ""
		if srv.Alerting(e.Dest) {
			marker = "  << ALERTING"
		}
		fmt.Printf("  %2d. %-15s ~%d distinct sources%s\n", i+1, trace.FormatIPv4(e.Dest), e.F, marker)
	}
}
