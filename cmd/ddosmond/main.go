// Command ddosmond is the DDoS monitor daemon: it listens for the wire
// protocol (flow-update batches, shipped sketches, top-k queries) from edge
// exporters, maintains the shared Tracking Distinct-Count Sketch, and prints
// alerts. This is the Fig. 1 DDoS MONITOR as a process.
//
// Usage:
//
//	ddosmond -listen 127.0.0.1:7171 -min-frequency 200
//
// Feed it with cmd/flowexport (replaying a trace) or any client speaking
// internal/wire. Stop with SIGINT/SIGTERM for a graceful drain.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/debugapi"
	"dcsketch/internal/monitor"
	"dcsketch/internal/server"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/trace"
	"dcsketch/internal/tracelog"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sigs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ddosmond:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a value arrives on stop. If ready
// is non-nil it is called once with the bound addresses (debugAddr is nil
// unless -debug-addr was given) — a seam for tests to discover ports.
func run(args []string, stop <-chan os.Signal, ready func(serveAddr, debugAddr net.Addr)) error {
	fs := flag.NewFlagSet("ddosmond", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:7171", "listen address")
		k        = fs.Int("k", 10, "top-k destinations tracked per check")
		minFreq  = fs.Int64("min-frequency", 64, "absolute alert floor (distinct sources)")
		interval = fs.Int("check-interval", 4096, "flow updates between tracking checks")
		seed     = fs.Uint64("seed", 1, "sketch seed (edges shipping sketches must match)")
		buckets  = fs.Int("s", 128, "second-level hash-table buckets (s)")
		tables   = fs.Int("r", 3, "second-level hash tables (r)")
		status   = fs.Duration("status-every", 10*time.Second, "status line period (0 disables)")
		debug    = fs.String("debug-addr", "", "telemetry listen address serving /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Monitor: monitor.Config{
			Sketch:        dcs.Config{Tables: *tables, Buckets: *buckets, Seed: *seed},
			K:             *k,
			CheckInterval: *interval,
			MinFrequency:  *minFreq,
		},
		OnAlert: func(a monitor.Alert) {
			fmt.Printf("ALERT update=%d dest=%s est_distinct_sources=%d baseline=%.1f\n",
				a.AtUpdate, trace.FormatIPv4(a.Dest), a.Estimated, a.Baseline)
		},
	})
	if err != nil {
		return err
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("ddosmond listening on %s (r=%d s=%d seed=%d)\n", addr, *tables, *buckets, *seed)

	var debugAddr net.Addr
	if *debug != "" {
		// Bind before publishing so a daemon that fails to start does not
		// claim the process-wide expvar slot.
		ln, err := net.Listen("tcp", *debug)
		if err != nil {
			srv.Shutdown()
			return fmt.Errorf("debug listen %s: %w", *debug, err)
		}
		reg := telemetry.NewRegistry()
		srv.RegisterTelemetry(reg)
		telemetry.RegisterRuntimeMetrics(reg)
		reg.PublishExpvar("dcsketch")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/debug/trace", tracelog.TraceHandler(srv.Tracer()))
		mux.Handle("/debug/alerts", debugapi.AlertsHandler(srv.Monitor()))
		mux.Handle("/debug/alerts/", debugapi.AlertsHandler(srv.Monitor()))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Handler: mux}
		defer serveDebug(dsrv, ln)()
		debugAddr = ln.Addr()
		fmt.Printf("telemetry on http://%s/metrics (expvar at /debug/vars, profiles at /debug/pprof, batch traces at /debug/trace, alert evidence at /debug/alerts)\n", debugAddr)
	}
	if ready != nil {
		ready(addr, debugAddr)
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("shutting down...")
			srv.Shutdown()
			printStatus(srv, *k)
			return nil
		case <-tick:
			printStatus(srv, *k)
		}
	}
}

// serveDebug serves the telemetry mux on ln in the background and returns a
// stop function that closes the server and then waits for the serve
// goroutine to exit, so a graceful shutdown never strands the acceptor
// mid-request.
func serveDebug(dsrv *http.Server, ln net.Listener) (stop func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = dsrv.Serve(ln)
	}()
	return func() {
		_ = dsrv.Close()
		<-done
	}
}

func printStatus(srv *server.Server, k int) {
	st := srv.Stats()
	fmt.Printf("status: %d updates in %d batches, %d queries, %d sketches merged, %d protocol errors\n",
		st.Updates, st.Batches, st.Queries, st.Sketches, st.ProtocolErrors)
	for i, e := range srv.TopK(k) {
		marker := ""
		if srv.Alerting(e.Dest) {
			marker = "  << ALERTING"
		}
		fmt.Printf("  %2d. %-15s ~%d distinct sources%s\n", i+1, trace.FormatIPv4(e.Dest), e.F, marker)
	}
}
