// Command ddosmond is the DDoS monitor daemon: it listens for the wire
// protocol (flow-update batches, shipped sketches, top-k queries) from edge
// exporters, maintains the shared Tracking Distinct-Count Sketch, and prints
// alerts. This is the Fig. 1 DDoS MONITOR as a process.
//
// Usage:
//
//	ddosmond -listen 127.0.0.1:7171 -min-frequency 200
//
// Feed it with cmd/flowexport (replaying a trace) or any client speaking
// internal/wire. Stop with SIGINT/SIGTERM for a graceful drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/server"
	"dcsketch/internal/trace"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sigs); err != nil {
		fmt.Fprintln(os.Stderr, "ddosmond:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a value arrives on stop.
func run(args []string, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("ddosmond", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:7171", "listen address")
		k        = fs.Int("k", 10, "top-k destinations tracked per check")
		minFreq  = fs.Int64("min-frequency", 64, "absolute alert floor (distinct sources)")
		interval = fs.Int("check-interval", 4096, "flow updates between tracking checks")
		seed     = fs.Uint64("seed", 1, "sketch seed (edges shipping sketches must match)")
		buckets  = fs.Int("s", 128, "second-level hash-table buckets (s)")
		tables   = fs.Int("r", 3, "second-level hash tables (r)")
		status   = fs.Duration("status-every", 10*time.Second, "status line period (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Monitor: monitor.Config{
			Sketch:        dcs.Config{Tables: *tables, Buckets: *buckets, Seed: *seed},
			K:             *k,
			CheckInterval: *interval,
			MinFrequency:  *minFreq,
		},
		OnAlert: func(a monitor.Alert) {
			fmt.Printf("ALERT update=%d dest=%s est_distinct_sources=%d baseline=%.1f\n",
				a.AtUpdate, trace.FormatIPv4(a.Dest), a.Estimated, a.Baseline)
		},
	})
	if err != nil {
		return err
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("ddosmond listening on %s (r=%d s=%d seed=%d)\n", addr, *tables, *buckets, *seed)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("shutting down...")
			srv.Shutdown()
			printStatus(srv, *k)
			return nil
		case <-tick:
			printStatus(srv, *k)
		}
	}
}

func printStatus(srv *server.Server, k int) {
	st := srv.Stats()
	fmt.Printf("status: %d updates in %d batches, %d queries, %d sketches merged, %d protocol errors\n",
		st.Updates, st.Batches, st.Queries, st.Sketches, st.ProtocolErrors)
	for i, e := range srv.TopK(k) {
		marker := ""
		if srv.Alerting(e.Dest) {
			marker = "  << ALERTING"
		}
		fmt.Printf("  %2d. %-15s ~%d distinct sources%s\n", i+1, trace.FormatIPv4(e.Dest), e.F, marker)
	}
}
