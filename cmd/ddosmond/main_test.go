package main

import (
	"os"
	"testing"
	"time"
)

func TestRunStartsAndStops(t *testing.T) {
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-status-every", "0"}, stop, nil)
	}()
	// Give the daemon a moment to bind, then stop it.
	time.Sleep(100 * time.Millisecond)
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop")
	}
}

func TestRunErrors(t *testing.T) {
	stop := make(chan os.Signal)
	if err := run([]string{"-listen", "not-an-address"}, stop, nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run([]string{"-s", "1"}, stop, nil); err == nil {
		t.Fatal("invalid sketch config accepted")
	}
	if err := run([]string{"-bogus"}, stop, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-debug-addr", "not-an-address"}, stop, nil); err == nil {
		t.Fatal("bad debug address accepted")
	}
}
