package main

import (
	"net"
	"net/http"
	"os"
	"testing"
	"time"
)

func TestRunStartsAndStops(t *testing.T) {
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-status-every", "0"}, stop, nil)
	}()
	// Give the daemon a moment to bind, then stop it.
	time.Sleep(100 * time.Millisecond)
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop")
	}
}

// TestServeDebugJoins pins the debug server's shutdown contract: stop must
// not return until the background Serve goroutine has exited. Regression
// test for the leak where run spawned Serve with no join and Close raced
// process teardown.
func TestServeDebugJoins(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dsrv := &http.Server{Handler: http.NewServeMux()}
	stop := serveDebug(dsrv, ln)

	// The server must actually be accepting before we stop it.
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("debug server not accepting: %v", err)
	}
	conn.Close()

	done := make(chan struct{})
	go func() {
		stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not join the serve goroutine")
	}
	// After stop, the listener is closed: Serve returned, not abandoned.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after stop")
	}
}

func TestRunErrors(t *testing.T) {
	stop := make(chan os.Signal)
	if err := run([]string{"-listen", "not-an-address"}, stop, nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run([]string{"-s", "1"}, stop, nil); err == nil {
		t.Fatal("invalid sketch config accepted")
	}
	if err := run([]string{"-bogus"}, stop, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-debug-addr", "not-an-address"}, stop, nil); err == nil {
		t.Fatal("bad debug address accepted")
	}
}
