package main

import (
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dcsketch/internal/export"
	"dcsketch/internal/server"
	"dcsketch/internal/wire"
)

// startDaemonIn runs the daemon with the given flags and hands back a stop
// function (send SIGTERM, wait for exit) so the test controls the restart
// boundary instead of t.Cleanup.
func startDaemonIn(t *testing.T, extra ...string) (serveAddr, debugAddr net.Addr, stopFn func()) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	readyCh := make(chan [2]net.Addr, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-status-every", "0"}, extra...)
	go func() {
		done <- run(args, stop, func(sa, da net.Addr) { readyCh <- [2]net.Addr{sa, da} })
	}()
	stopFn = func() {
		stop <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not stop")
		}
	}
	select {
	case addrs := <-readyCh:
		return addrs[0], addrs[1], stopFn
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	panic("unreachable")
}

// snapBatch is the deterministic batch for sequence seq: three distinct
// sources hitting destination seq, so the sketch reveals exactly which
// sequences it contains.
func snapBatch(seq uint64) []wire.Update {
	b := make([]wire.Update, 3)
	for j := range b {
		b[j] = wire.Update{Src: uint32(9000 + 3*seq + uint64(j)), Dst: uint32(seq), Delta: 1}
	}
	return b
}

// TestSnapshotSurvivesSigtermMidIngest is the graceful-shutdown ordering
// proof at the daemon level: SIGTERM lands while an exporter is actively
// streaming, and the restarted daemon (same -snapshot-dir) must still hold
// every batch the dead incarnation acknowledged — none lost from the
// sketch, none re-applied when the edge replays its trace.
func TestSnapshotSurvivesSigtermMidIngest(t *testing.T) {
	dir := t.TempDir()
	flags := []string{
		"-snapshot-dir", dir,
		"-snapshot-interval", "0", // only the shutdown flush writes
		"-s", "256",
		"-min-frequency", "100000", // keep alert prints out of the test log
	}
	serveAddr, _, stopDaemon := startDaemonIn(t, flags...)

	exp1, err := export.New(export.Config{Addr: serveAddr.String(), SessionID: 9, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	// Stream batches slowly enough that SIGTERM lands mid-trace.
	const total = 60
	var exported atomic.Uint64
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		for seq := uint64(1); seq <= total; seq++ {
			if err := exp1.Export(snapBatch(seq)); err != nil {
				t.Error(err)
				return
			}
			exported.Store(seq)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for exp1.Stats().BatchesAcked < 20 {
		if time.Now().After(deadline) {
			t.Fatal("exporter never got 20 acks")
		}
		time.Sleep(time.Millisecond)
	}
	stopDaemon() // SIGTERM with the feeder still running
	<-feederDone
	// No further acks are possible: the ledger is final.
	acked := exp1.Stats().BatchesAcked
	exp1.Close()
	if _, err := os.Stat(filepath.Join(dir, "ddosmond.snapshot")); err != nil {
		t.Fatalf("shutdown flushed no snapshot: %v", err)
	}

	// Incarnation 2 restores from the shutdown flush.
	serveAddr2, debugAddr2, stopDaemon2 := startDaemonIn(t, append(flags, "-debug-addr", "127.0.0.1:0")...)
	defer stopDaemon2()

	// The edge replays its full trace under the same session. The hello
	// echo prunes everything the dead incarnation acked; only the tail is
	// delivered and applied.
	exp2, err := export.New(export.Config{Addr: serveAddr2.String(), SessionID: 9, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	for seq := uint64(1); seq <= total; seq++ {
		if err := exp2.Export(snapBatch(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp2.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Proof 1 (nothing lost): the restored-plus-replayed sketch holds every
	// destination 1..total — in particular every batch acked pre-SIGTERM.
	c, err := server.Dial(serveAddr2.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	top, err := c.TopK(total + 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, e := range top {
		if e.Dest == 0 || uint64(e.Dest) > total {
			t.Fatalf("restored sketch holds unknown dest %d", e.Dest)
		}
		seen[e.Dest] = true
	}
	if len(seen) != total {
		t.Fatalf("restored sketch holds %d of %d destinations: acked batches lost across SIGTERM (acked=%d)",
			len(seen), total, acked)
	}

	// Proof 2 (nothing re-applied): incarnation 2's own update counter is at
	// most the unacked tail — replayed pre-ack batches were deduped by the
	// restored horizon, not folded twice.
	_, body := httpGet(t, "http://"+debugAddr2.String()+"/metrics")
	applied := metricValue(body, "dcsketch_server_updates_total")
	if max := float64(3 * (total - acked)); applied > max {
		t.Fatalf("restarted daemon applied %v updates, want <= %v: an acked batch was re-applied", applied, max)
	}
	if acked < 20 {
		t.Fatalf("acked = %d, mid-ingest setup broken", acked)
	}
}
