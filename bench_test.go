package dcsketch

// This file holds one benchmark per table/figure of the paper's evaluation
// (§6), plus ablation benches for the design choices DESIGN.md calls out.
// The experiment harness in internal/experiment produces the actual
// figure-shaped data tables (run cmd/experiments); these benches expose the
// same code paths to `go test -bench` so regressions in any reproduced
// result are visible in standard tooling.
//
//	BenchmarkFig8aRecall / BenchmarkFig8bError    — Fig. 8(a)/(b) accuracy sweep
//	BenchmarkFig9QueryMix/*                       — Fig. 9 update+query mixes
//	BenchmarkSpaceFootprint                       — §6.1 space comparison
//	BenchmarkUpdate*/BenchmarkQuery*              — Table 2 cost asymmetics
//	BenchmarkScenarioDiscrimination               — §1 robustness scenario
//	Benchmark*Ablation*                           — design-choice ablations

import (
	"fmt"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/experiment"
	"dcsketch/internal/pipeline"
	"dcsketch/internal/stream"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/window"
	"dcsketch/internal/workload"
)

// benchWorkload memoizes generated workloads across benchmark iterations.
var benchWorkloads = map[string]*workload.Workload{}

func benchWorkload(b *testing.B, u int64, d int, z float64) *workload.Workload {
	b.Helper()
	key := fmt.Sprintf("%d/%d/%v", u, d, z)
	if w, ok := benchWorkloads[key]; ok {
		return w
	}
	w, err := workload.Generate(workload.Config{
		DistinctPairs: u, Destinations: d, Skew: z, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchWorkloads[key] = w
	return w
}

// BenchmarkFig8aRecall regenerates one Fig. 8(a) accuracy point per
// iteration (z = 1.5, k <= 15, 1 seed) via the experiment harness.
func BenchmarkFig8aRecall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig8(experiment.Fig8Params{
			Scale: 0.005, Skews: []float64{1.5}, Ks: []int{5, 10, 15}, Seeds: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 3 {
			b.Fatalf("got %d points", len(points))
		}
	}
}

// BenchmarkFig8bError regenerates one Fig. 8(b) relative-error point per
// iteration at extreme skew.
func BenchmarkFig8bError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig8(experiment.Fig8Params{
			Scale: 0.005, Skews: []float64{2.5}, Ks: []int{5, 10}, Seeds: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 2 {
			b.Fatalf("got %d points", len(points))
		}
	}
}

// BenchmarkFig9QueryMix measures per-update cost for both sketch variants
// under the paper's query frequencies (Fig. 9): the Basic sketch degrades
// as queries become frequent, the Tracking sketch does not.
func BenchmarkFig9QueryMix(b *testing.B) {
	w := benchWorkload(b, 50_000, 320, 1.0)
	ups := w.Updates()
	for _, qf := range []float64{0, 0.0025} {
		interval := 0
		if qf > 0 {
			interval = int(1 / qf)
		}
		b.Run(fmt.Sprintf("basic/qf=%v", qf), func(b *testing.B) {
			sk, err := dcs.New(dcs.Config{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := ups[i%len(ups)]
				sk.Update(u.Src, u.Dst, int64(u.Delta))
				if interval > 0 && (i+1)%interval == 0 {
					sk.TopK(1)
				}
			}
		})
		b.Run(fmt.Sprintf("tracking/qf=%v", qf), func(b *testing.B) {
			sk, err := tdcs.New(dcs.Config{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := ups[i%len(ups)]
				sk.Update(u.Src, u.Dst, int64(u.Delta))
				if interval > 0 && (i+1)%interval == 0 {
					sk.TopK(1)
				}
			}
		})
	}
}

// BenchmarkSpaceFootprint regenerates the §6.1 space table (analytic rows
// plus a measured run).
func BenchmarkSpaceFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Space(experiment.SpaceParams{MeasuredU: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkUpdateBasic / BenchmarkUpdateTracking are Table 2's update-cost
// row: Basic O(r·log m) vs Tracking O(r·log² m) per flow update.
func BenchmarkUpdateBasic(b *testing.B) {
	w := benchWorkload(b, 100_000, 640, 1.0)
	ups := w.Updates()
	sk, err := dcs.New(dcs.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		sk.Update(u.Src, u.Dst, int64(u.Delta))
	}
}

func BenchmarkUpdateTracking(b *testing.B) {
	w := benchWorkload(b, 100_000, 640, 1.0)
	ups := w.Updates()
	sk, err := tdcs.New(dcs.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		sk.Update(u.Src, u.Dst, int64(u.Delta))
	}
}

// BenchmarkQueryBasic / BenchmarkQueryTracking are Table 2's query-cost row:
// Basic O(r·s·log² m) vs Tracking O(k·log m) per top-k query.
func BenchmarkQueryBasic(b *testing.B) {
	w := benchWorkload(b, 100_000, 640, 1.0)
	sk, err := dcs.New(dcs.Config{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	for _, u := range w.Updates() {
		sk.Update(u.Src, u.Dst, int64(u.Delta))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.TopK(10)
	}
}

func BenchmarkQueryTracking(b *testing.B) {
	w := benchWorkload(b, 100_000, 640, 1.0)
	sk, err := tdcs.New(dcs.Config{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	for _, u := range w.Updates() {
		sk.Update(u.Src, u.Dst, int64(u.Delta))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.TopK(10)
	}
}

// BenchmarkScenarioDiscrimination runs the §1 robustness scenario: SYN flood
// vs flash crowd through distinct-count, volume, and monitor pipelines.
func BenchmarkScenarioDiscrimination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Scenario(experiment.ScenarioParams{
			Zombies: 500, CrowdClients: 1000, BackgroundConnections: 2000, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.DistinctTop1 != experiment.ScenarioVictim {
			b.Fatal("scenario lost the victim")
		}
	}
}

// BenchmarkFingerprintAblation measures the update-path cost of the
// fingerprint checksum counter (design-choice ablation).
func BenchmarkFingerprintAblation(b *testing.B) {
	w := benchWorkload(b, 100_000, 640, 1.0)
	ups := w.Updates()
	for _, fp := range []bool{true, false} {
		b.Run(fmt.Sprintf("fingerprint=%v", fp), func(b *testing.B) {
			sk, err := dcs.New(dcs.Config{Seed: 13, DisableFingerprint: !fp})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := ups[i%len(ups)]
				sk.Update(u.Src, u.Dst, int64(u.Delta))
			}
		})
	}
}

// BenchmarkSampleTargetAblation measures query cost under the paper's
// stopping constant vs the implementation default.
func BenchmarkSampleTargetAblation(b *testing.B) {
	w := benchWorkload(b, 100_000, 640, 1.5)
	for _, tc := range []struct {
		name   string
		target int
	}{
		{"paper", dcs.PaperSampleTarget(dcs.DefaultBuckets, dcs.DefaultEpsilon)},
		{"default", dcs.DefaultBuckets},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sk, err := dcs.New(dcs.Config{Seed: 17, SampleTarget: tc.target})
			if err != nil {
				b.Fatal(err)
			}
			for _, u := range w.Updates() {
				sk.Update(u.Src, u.Dst, int64(u.Delta))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sk.TopK(10)
			}
		})
	}
}

// BenchmarkMonitorPipeline measures the full detection path: flow update ->
// tracking sketch -> periodic baseline check.
func BenchmarkMonitorPipeline(b *testing.B) {
	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 50_000, Seed: 19}).Updates()
	if err != nil {
		b.Fatal(err)
	}
	mon, err := NewMonitor(MonitorConfig{SketchOptions: []Option{WithSeed(21)}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := attack[i%len(attack)]
		mon.Update(u.Src, u.Dst, int64(u.Delta))
	}
}

// BenchmarkMergeSketches measures collector-side sketch merging.
func BenchmarkMergeSketches(b *testing.B) {
	mk := func() *dcs.Sketch {
		sk, err := dcs.New(dcs.Config{Seed: 23})
		if err != nil {
			b.Fatal(err)
		}
		w := benchWorkload(b, 20_000, 128, 1.0)
		for _, u := range w.Updates() {
			sk.Update(u.Src, u.Dst, int64(u.Delta))
		}
		return sk
	}
	dst, src := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Merge(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdQuery regenerates the footnote-3 threshold-tracking
// experiment point (one τ sweep per iteration).
func BenchmarkThresholdQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiment.Threshold(experiment.ThresholdParams{Scale: 0.005, Seeds: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkWindowRotate measures the cost of retiring an epoch from a
// windowed tracker (a counter subtraction plus a reset).
func BenchmarkWindowRotate(b *testing.B) {
	w, err := window.New(dcs.Config{Seed: 31}, 4)
	if err != nil {
		b.Fatal(err)
	}
	ups := benchWorkload(b, 20_000, 128, 1.0).Updates()
	for _, u := range ups {
		w.Update(u.Src, u.Dst, int64(u.Delta))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Rotate(); err != nil {
			b.Fatal(err)
		}
		// Keep the window non-trivially loaded between rotations.
		u := ups[i%len(ups)]
		w.Update(u.Src, u.Dst, int64(u.Delta))
	}
}

// BenchmarkPipelineIngest measures the sharded concurrent ingestion fast
// path — per-producer staging buffers shipped to shard workers one channel
// hop per batch — against direct single-sketch updates
// (BenchmarkUpdateTracking).
func BenchmarkPipelineIngest(b *testing.B) {
	p, err := pipeline.New(dcs.Config{Seed: 37}, 2, 4096)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ups := benchWorkload(b, 100_000, 640, 1.0).Updates()
	bt := p.NewBatcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		bt.Update(u.Src, u.Dst, int64(u.Delta))
	}
	bt.Flush()
}

// BenchmarkSerializeSketch measures the RLE wire encoding.
func BenchmarkSerializeSketch(b *testing.B) {
	sk, err := dcs.New(dcs.Config{Seed: 29})
	if err != nil {
		b.Fatal(err)
	}
	w := benchWorkload(b, 100_000, 640, 1.0)
	for _, u := range w.Updates() {
		sk.Update(u.Src, u.Dst, int64(u.Delta))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}
