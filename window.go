package dcsketch

import (
	"dcsketch/internal/dcs"
	"dcsketch/internal/window"
)

// WindowedTracker tracks the top-k destinations over a tumbling window of
// recent epochs instead of the whole stream, exploiting the sketch's
// linearity: retiring an epoch is a counter subtraction. Use it when the
// monitor runs indefinitely and old, never-completed flows (pre-dating the
// monitor, or with lost completions) should age out of the ranking.
type WindowedTracker struct {
	inner *window.Tracker
	// scratch is the re-keying buffer of UpdateBatch, reused across calls
	// under the tracker's single-goroutine contract.
	scratch []dcs.KeyDelta
}

// NewWindowedTracker builds a tracker over `epochs` live epochs (>= 1).
// Call Rotate on a timer (e.g. once a minute) to advance the window.
func NewWindowedTracker(epochs int, opts ...Option) (*WindowedTracker, error) {
	inner, err := window.New(buildConfig(opts), epochs)
	if err != nil {
		return nil, err
	}
	return &WindowedTracker{inner: inner}, nil
}

// Insert records a potentially-malicious connection in the current epoch.
func (w *WindowedTracker) Insert(src, dst uint32) { w.inner.Update(src, dst, 1) }

// Delete removes a previously recorded connection.
func (w *WindowedTracker) Delete(src, dst uint32) { w.inner.Update(src, dst, -1) }

// Update applies a signed net frequency change in the current epoch.
func (w *WindowedTracker) Update(src, dst uint32, delta int64) { w.inner.Update(src, dst, delta) }

// UpdateBatch applies a batch of flow updates to the current epoch through
// the batched kernel. Equivalent to calling Update for each record in order;
// the whole batch lands in one epoch.
func (w *WindowedTracker) UpdateBatch(batch []FlowUpdate) {
	if len(batch) == 0 {
		return
	}
	w.scratch = appendKeyDeltas(w.scratch[:0], batch)
	w.inner.UpdateBatch(w.scratch)
}

// Rotate seals the current epoch and retires the oldest one.
func (w *WindowedTracker) Rotate() error { return w.inner.Rotate() }

// TopK returns the approximate top-k destinations over the live window.
func (w *WindowedTracker) TopK(k int) []Estimate {
	return convertEstimates(w.inner.TopK(k))
}

// Threshold returns all windowed destinations with estimated frequency >=
// tau.
func (w *WindowedTracker) Threshold(tau int64) []Estimate {
	return convertEstimates(w.inner.Threshold(tau))
}

// DistinctPairs estimates the live distinct pairs within the window.
func (w *WindowedTracker) DistinctPairs() int64 { return w.inner.DistinctPairs() }

// Epochs returns the window width in epochs.
func (w *WindowedTracker) Epochs() int { return w.inner.Epochs() }

// SizeBytes returns the tracker's memory footprint (epochs+1 sketches).
func (w *WindowedTracker) SizeBytes() int { return w.inner.SizeBytes() }
