#!/usr/bin/env sh
# CI entry points for the dcsketch repo.
#
#   ./ci.sh tier1   build + unit tests (the always-green floor)
#   ./ci.sh check   tier1 plus vet, sketchlint, -race tests, dcsdebug
#                   assertion tests, and a fuzz smoke pass
#
# `check` is the full gate documented in ROADMAP.md; run it before merging.
set -eu

cd "$(dirname "$0")"

tier1() {
	go build ./...
	go test ./...
}

check() {
	tier1
	go vet ./...
	# sketchlint enforces the sketch invariants the type system cannot:
	# same-seed merges, '// guarded by' mutex discipline, handled wire
	# errors, and the ±1 delta discipline. See DESIGN.md.
	go run ./cmd/sketchlint ./...
	go test -race ./...
	# Runtime invariant assertions (counter non-negativity, tracking/
	# counter consistency) compiled in via the dcsdebug build tag.
	go test -tags dcsdebug ./internal/dcs ./internal/tdcs
	# Fuzz smoke: a short budget per representative target catches
	# decoder and routing regressions without holding CI hostage.
	go test -fuzz='^FuzzUnmarshalBinary$' -fuzztime=10s ./internal/dcs
	go test -fuzz='^FuzzShardRouting$' -fuzztime=10s ./internal/pipeline
	go test -fuzz='^FuzzReadFrame$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzParseRecord$' -fuzztime=10s ./internal/trace
}

case "${1:-tier1}" in
tier1) tier1 ;;
check) check ;;
*)
	echo "usage: $0 [tier1|check]" >&2
	exit 2
	;;
esac
