#!/usr/bin/env sh
# CI entry points for the dcsketch repo.
#
#   ./ci.sh tier1   build + unit tests (the always-green floor)
#   ./ci.sh check   tier1 plus vet, sketchlint, the perfcheck compiler
#                   contract gate (allocfree/bce/inline pins from
#                   perfpins.txt), -race tests, a forced-generic vec
#                   pass, dcsdebug assertion tests, and a concurrent
#                   fuzz smoke pass
#   ./ci.sh bench   run the Table-2 update/query benchmarks plus the
#                   pipeline ingest benchmark with -benchmem, record
#                   medians to BENCH_2.json, and fail if any ns/op or
#                   allocs/op regresses against BENCH_baseline.json
#
# `check` is the full gate documented in ROADMAP.md; run it before merging.
set -eu

cd "$(dirname "$0")"

tier1() {
	go build ./...
	go test ./...
}

check() {
	tier1
	go vet ./...
	# sketchlint enforces the sketch invariants the type system cannot:
	# same-seed merges, '// guarded by' mutex discipline, handled wire
	# errors, the ±1 delta discipline, the hot-path contracts
	# (//lint:allocfree call graphs, //lint:scratch escape hygiene,
	# sync.Pool Get/Put balance), and the concurrency contracts
	# (lockorder acquisition cycles, goroleak goroutine joins,
	# atomicfield atomics discipline, msgexhaustive wire coverage).
	# See DESIGN.md. The run must be self-clean: zero unsuppressed
	# diagnostics over the whole module. -inventory makes the same single
	# run also print the per-analyzer finding/suppression/timing trailers,
	# so every //lint: escape hatch in the tree stays visible in the CI
	# log instead of rotting silently. The suite includes asmabi, which
	# cross-checks the internal/vec assembly against its Go stubs (NOSPLIT,
	# ABI0 frame offsets, fallback signature parity, differential tests).
	go run ./cmd/sketchlint -inventory ./...
	# perfcheck ground-truths the perf contracts against the compiler
	# itself: //lint:allocfree vs escape analysis, //lint:bce vs residual
	# ssa/check_bce sites, //lint:inline vs inlining decisions. The pin
	# list lives in perfpins.txt (shared with `make lint`); deleting an
	# annotation or misspelling a pinned symbol fails here instead of
	# silently shrinking the proof surface.
	go run ./cmd/perfcheck -require-file perfpins.txt
	go test -race ./...
	# Forced-generic pass: DCSKETCH_FORCE_GENERIC pins the portable vec
	# kernels even on AVX2 hardware, so the generic fallback — otherwise
	# exercised only on non-amd64 builders — gets the same differential
	# and race coverage as the SIMD path, plus the gate assertion in
	# TestForceGenericPinsFallback.
	DCSKETCH_FORCE_GENERIC=1 go test -race ./internal/vec ./internal/dcs ./internal/tdcs
	# Chaos pass: the seeded faultnet e2es. In export: connections cut
	# mid-batch while the exporter streams into a live daemon must
	# reproduce the fault-free top-k byte-for-byte with exact ledger
	# accounting, and the flight recorder alone must reconstruct a killed
	# batch's cut -> reconnect -> retransmit -> dedup story through
	# /debug/trace (TestChaosTraceReconstructsRetransmit). In relay: the
	# restart chaos — cuts plus a hard process kill and snapshot-file
	# recovery at BOTH tiers of the edge -> regional -> global fabric —
	# must keep the global top-k byte-identical to a single-box run with
	# flight-recorder proof of exactly-one apply per (session, seq).
	go test -race -run '^TestChaos' -count 1 ./internal/export ./internal/relay
	# Telemetry smoke: start the daemon with -debug-addr, drive real
	# traffic over a client connection, and scrape /metrics end to end
	# (decode failures, level occupancy, query-latency histogram).
	go test -run '^TestTelemetrySmoke$' -count 1 ./cmd/ddosmond
	# Trace smoke: the same daemon surface for the flight recorder — a real
	# exporter's batch traced through /debug/trace and a flood's evidence
	# served from /debug/alerts/{id}.
	go test -run '^TestDebugTraceAndAlertsSmoke$' -count 1 ./cmd/ddosmond
	# Runtime invariant assertions (counter non-negativity, tracking/
	# counter consistency) compiled in via the dcsdebug build tag.
	go test -tags dcsdebug ./internal/dcs ./internal/tdcs
	# ...and the same assertions under the race detector, so a data race
	# on a counter cannot masquerade as an invariant violation.
	go test -race -tags dcsdebug ./internal/dcs ./internal/tdcs
	# Fuzz smoke: a short budget per representative target catches
	# decoder and routing regressions without holding CI hostage. The
	# fifteen targets are split into six groups; each group runs its
	# targets sequentially in one background job and the groups run
	# concurrently (-fuzztime is wall-clock, so overlapping the waits
	# keeps the whole smoke pass under ~60s instead of 15 x 10s).
	# fuzz_group's quiet logs surface only on failure.
	FUZZDIR="$(mktemp -d)"
	fuzz_group sketch \
		FuzzUnmarshalBinary ./internal/dcs \
		FuzzShardRouting ./internal/pipeline \
		FuzzDecodeSnapshot ./internal/snapshot &
	fuzz_group wire-frame \
		FuzzReadFrame ./internal/wire \
		FuzzDecodeHello ./internal/wire \
		FuzzDecodeUpdates ./internal/wire &
	fuzz_group wire-into \
		FuzzDecodeUpdatesInto ./internal/wire \
		FuzzDecodeTopKReply ./internal/wire &
	fuzz_group wire-seq \
		FuzzDecodeSeqUpdates ./internal/wire \
		FuzzDecodeSeqUpdatesInto ./internal/wire &
	fuzz_group tooling \
		FuzzParseRecord ./internal/trace \
		FuzzDirectiveParse ./internal/analysis \
		FuzzDecodeTraceQuery ./internal/tracelog &
	fuzz_group diag \
		FuzzWritePrometheus ./internal/telemetry \
		FuzzParseCompilerDiag ./internal/perfdiag &
	wait
	if [ -e "$FUZZDIR/FAILED" ]; then
		echo "fuzz smoke failures:" >&2
		cat "$FUZZDIR/FAILED" >&2
		cat "$FUZZDIR"/*.log >&2
		rm -rf "$FUZZDIR"
		exit 1
	fi
	rm -rf "$FUZZDIR"
}

# fuzz_group <name> [<FuzzTarget> <package>]...: run each target for 10s,
# sequentially within the group, appending output to one per-group log that
# is printed only when a target fails. Groups are launched in the background
# from check() and joined with a single wait.
fuzz_group() {
	_fg_name="$1"
	shift
	_fg_log="$FUZZDIR/$_fg_name.log"
	while [ "$#" -gt 0 ]; do
		_fg_target="$1"
		_fg_pkg="$2"
		shift 2
		if ! go test -fuzz="^${_fg_target}\$" -fuzztime=10s "$_fg_pkg" >>"$_fg_log" 2>&1; then
			echo "  $_fg_target in $_fg_pkg (group $_fg_name)" >>"$FUZZDIR/FAILED"
		fi
	done
}

bench() {
	# The gated benchmarks: the Table-2 per-update/query costs, the sharded
	# ingest path, and the whole-pipeline server ingest (TCP socket ->
	# pooled arena -> in-place decode -> pipeline -> kernel). 5 repeats
	# give benchcheck a stable median.
	out="$(mktemp)"
	trap 'rm -f "$out"' EXIT
	go test -run '^$' \
		-bench '^(BenchmarkUpdateBasic|BenchmarkUpdateTracking|BenchmarkQueryBasic|BenchmarkQueryTracking|BenchmarkPipelineIngest)$' \
		-benchmem -count 5 . | tee "$out"
	go test -run '^$' \
		-bench '^BenchmarkServerIngest$' \
		-benchmem -count 5 ./internal/server | tee -a "$out"
	# Whole-pipeline throughput at a glance: median of the updates/s metric
	# the server ingest benchmark reports alongside its per-frame ns/op.
	awk '/^BenchmarkServerIngest/ { for (i = 1; i < NF; i++) if ($(i+1) == "updates/s") v[n++] = $i }
	     END { if (n) { for (i = 0; i < n; i++) for (j = i + 1; j < n; j++)
	           if (v[j] + 0 < v[i] + 0) { tmp = v[i]; v[i] = v[j]; v[j] = tmp }
	           printf "server ingest throughput: %.0f updates/sec (median of %d runs)\n", v[int(n/2)], n } }' "$out"
	go run ./cmd/benchcheck parse -o BENCH_2.json "$out"
	go run ./cmd/benchcheck compare \
		-baseline BENCH_baseline.json -current BENCH_2.json -max-regress 0.10
}

case "${1:-tier1}" in
tier1) tier1 ;;
check) check ;;
bench) bench ;;
*)
	echo "usage: $0 [tier1|check|bench]" >&2
	exit 2
	;;
esac
