#!/usr/bin/env sh
# CI entry points for the dcsketch repo.
#
#   ./ci.sh tier1   build + unit tests (the always-green floor)
#   ./ci.sh check   tier1 plus vet, sketchlint, -race tests, dcsdebug
#                   assertion tests, and a fuzz smoke pass
#   ./ci.sh bench   run the Table-2 update/query benchmarks plus the
#                   pipeline ingest benchmark with -benchmem, record
#                   medians to BENCH_2.json, and fail if any ns/op
#                   regresses >10% against BENCH_baseline.json
#
# `check` is the full gate documented in ROADMAP.md; run it before merging.
set -eu

cd "$(dirname "$0")"

tier1() {
	go build ./...
	go test ./...
}

check() {
	tier1
	go vet ./...
	# sketchlint enforces the sketch invariants the type system cannot:
	# same-seed merges, '// guarded by' mutex discipline, handled wire
	# errors, and the ±1 delta discipline. See DESIGN.md.
	go run ./cmd/sketchlint ./...
	go test -race ./...
	# Runtime invariant assertions (counter non-negativity, tracking/
	# counter consistency) compiled in via the dcsdebug build tag.
	go test -tags dcsdebug ./internal/dcs ./internal/tdcs
	# Fuzz smoke: a short budget per representative target catches
	# decoder and routing regressions without holding CI hostage.
	go test -fuzz='^FuzzUnmarshalBinary$' -fuzztime=10s ./internal/dcs
	go test -fuzz='^FuzzShardRouting$' -fuzztime=10s ./internal/pipeline
	go test -fuzz='^FuzzReadFrame$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzParseRecord$' -fuzztime=10s ./internal/trace
}

bench() {
	# The five gated benchmarks: the Table-2 per-update/query costs and
	# the sharded ingest path. 5 repeats give benchcheck a stable median.
	out="$(mktemp)"
	trap 'rm -f "$out"' EXIT
	go test -run '^$' \
		-bench '^(BenchmarkUpdateBasic|BenchmarkUpdateTracking|BenchmarkQueryBasic|BenchmarkQueryTracking|BenchmarkPipelineIngest)$' \
		-benchmem -count 5 . | tee "$out"
	go run ./cmd/benchcheck parse -o BENCH_2.json "$out"
	go run ./cmd/benchcheck compare \
		-baseline BENCH_baseline.json -current BENCH_2.json -max-regress 0.10
}

case "${1:-tier1}" in
tier1) tier1 ;;
check) check ;;
bench) bench ;;
*)
	echo "usage: $0 [tier1|check|bench]" >&2
	exit 2
	;;
esac
