#!/usr/bin/env sh
# CI entry points for the dcsketch repo.
#
#   ./ci.sh tier1   build + unit tests (the always-green floor)
#   ./ci.sh check   tier1 plus vet, sketchlint, the escapecheck
#                   allocation gate, -race tests, dcsdebug assertion
#                   tests, and a fuzz smoke pass
#   ./ci.sh bench   run the Table-2 update/query benchmarks plus the
#                   pipeline ingest benchmark with -benchmem, record
#                   medians to BENCH_2.json, and fail if any ns/op or
#                   allocs/op regresses against BENCH_baseline.json
#
# `check` is the full gate documented in ROADMAP.md; run it before merging.
set -eu

cd "$(dirname "$0")"

tier1() {
	go build ./...
	go test ./...
}

check() {
	tier1
	go vet ./...
	# sketchlint enforces the sketch invariants the type system cannot:
	# same-seed merges, '// guarded by' mutex discipline, handled wire
	# errors, the ±1 delta discipline, the hot-path contracts
	# (//lint:allocfree call graphs, //lint:scratch escape hygiene,
	# sync.Pool Get/Put balance), and the concurrency contracts
	# (lockorder acquisition cycles, goroleak goroutine joins,
	# atomicfield atomics discipline, msgexhaustive wire coverage).
	# See DESIGN.md. The run must be self-clean: zero unsuppressed
	# diagnostics over the whole module.
	go run ./cmd/sketchlint ./...
	# Suppression inventory: per-analyzer finding/suppression counts and
	# timings from the -json trailer, so every //lint: escape hatch in
	# the tree stays visible in the CI log instead of rotting silently.
	echo "sketchlint suppression inventory (findings/suppressed/elapsed per analyzer):"
	go run ./cmd/sketchlint -json ./... | grep '"summary":true'
	# escapecheck ground-truths //lint:allocfree against the compiler's
	# escape analysis, and -require pins the annotations on the update
	# kernels so deleting one fails here instead of shrinking the proof.
	go run ./cmd/escapecheck \
		-require 'dcsketch/internal/dcs:(*Sketch).updateKernel' \
		-require 'dcsketch/internal/dcs:(*Sketch).applySig' \
		-require 'dcsketch/internal/dcs:(*Sketch).UpdateLocated' \
		-require 'dcsketch/internal/vec:BuildMaskedAddends' \
		-require 'dcsketch/internal/vec:AddInt64Lanes' \
		-require 'dcsketch/internal/dcs:(*Sketch).UpdateBatch' \
		-require 'dcsketch/internal/tdcs:(*Sketch).update1' \
		-require 'dcsketch/internal/tdcs:(*Sketch).UpdateBatch' \
		-require 'dcsketch/internal/iheap:(*Heap).Adjust' \
		-require 'dcsketch/internal/telemetry:(*Counter).Inc' \
		-require 'dcsketch/internal/telemetry:(*Counter).Add' \
		-require 'dcsketch/internal/telemetry:(*Gauge).Set' \
		-require 'dcsketch/internal/telemetry:(*Gauge).Add' \
		-require 'dcsketch/internal/telemetry:(*Histogram).Observe'
	go test -race ./...
	# Chaos pass: the seeded faultnet e2e — connections cut mid-batch
	# while the exporter streams into a live daemon — must reproduce the
	# fault-free top-k byte-for-byte with exact ledger accounting.
	go test -race -run '^TestChaos' -count 1 ./internal/export
	# Telemetry smoke: start the daemon with -debug-addr, drive real
	# traffic over a client connection, and scrape /metrics end to end
	# (decode failures, level occupancy, query-latency histogram).
	go test -run '^TestTelemetrySmoke$' -count 1 ./cmd/ddosmond
	# Runtime invariant assertions (counter non-negativity, tracking/
	# counter consistency) compiled in via the dcsdebug build tag.
	go test -tags dcsdebug ./internal/dcs ./internal/tdcs
	# ...and the same assertions under the race detector, so a data race
	# on a counter cannot masquerade as an invariant violation.
	go test -race -tags dcsdebug ./internal/dcs ./internal/tdcs
	# Fuzz smoke: a short budget per representative target catches
	# decoder and routing regressions without holding CI hostage.
	go test -fuzz='^FuzzUnmarshalBinary$' -fuzztime=10s ./internal/dcs
	go test -fuzz='^FuzzShardRouting$' -fuzztime=10s ./internal/pipeline
	go test -fuzz='^FuzzReadFrame$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzDecodeHello$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzDecodeUpdates$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzDecodeUpdatesInto$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzDecodeTopKReply$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzDecodeSeqUpdates$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzDecodeSeqUpdatesInto$' -fuzztime=10s ./internal/wire
	go test -fuzz='^FuzzParseRecord$' -fuzztime=10s ./internal/trace
	go test -fuzz='^FuzzDirectiveParse$' -fuzztime=10s ./internal/analysis
	go test -fuzz='^FuzzWritePrometheus$' -fuzztime=10s ./internal/telemetry
}

bench() {
	# The gated benchmarks: the Table-2 per-update/query costs, the sharded
	# ingest path, and the whole-pipeline server ingest (TCP socket ->
	# pooled arena -> in-place decode -> pipeline -> kernel). 5 repeats
	# give benchcheck a stable median.
	out="$(mktemp)"
	trap 'rm -f "$out"' EXIT
	go test -run '^$' \
		-bench '^(BenchmarkUpdateBasic|BenchmarkUpdateTracking|BenchmarkQueryBasic|BenchmarkQueryTracking|BenchmarkPipelineIngest)$' \
		-benchmem -count 5 . | tee "$out"
	go test -run '^$' \
		-bench '^BenchmarkServerIngest$' \
		-benchmem -count 5 ./internal/server | tee -a "$out"
	# Whole-pipeline throughput at a glance: median of the updates/s metric
	# the server ingest benchmark reports alongside its per-frame ns/op.
	awk '/^BenchmarkServerIngest/ { for (i = 1; i < NF; i++) if ($(i+1) == "updates/s") v[n++] = $i }
	     END { if (n) { for (i = 0; i < n; i++) for (j = i + 1; j < n; j++)
	           if (v[j] + 0 < v[i] + 0) { tmp = v[i]; v[i] = v[j]; v[j] = tmp }
	           printf "server ingest throughput: %.0f updates/sec (median of %d runs)\n", v[int(n/2)], n } }' "$out"
	go run ./cmd/benchcheck parse -o BENCH_2.json "$out"
	go run ./cmd/benchcheck compare \
		-baseline BENCH_baseline.json -current BENCH_2.json -max-regress 0.10
}

case "${1:-tier1}" in
tier1) tier1 ;;
check) check ;;
bench) bench ;;
*)
	echo "usage: $0 [tier1|check|bench]" >&2
	exit 2
	;;
esac
