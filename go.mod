module dcsketch

go 1.22
