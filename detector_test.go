package dcsketch

import "testing"

func TestWindowedTrackerPublicAPI(t *testing.T) {
	w, err := NewWindowedTracker(2, WithSeed(31), WithBuckets(256))
	if err != nil {
		t.Fatal(err)
	}
	for src := uint32(1); src <= 40; src++ {
		w.Insert(src, 10)
	}
	if top := w.TopK(1); len(top) != 1 || top[0].Dest != 10 {
		t.Fatalf("TopK = %+v", top)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if top := w.TopK(1); len(top) != 0 {
		t.Fatalf("expired window TopK = %+v", top)
	}
	w.Update(1, 20, 1)
	w.Delete(1, 20)
	if got := w.DistinctPairs(); got != 0 {
		t.Fatalf("DistinctPairs = %d", got)
	}
	if w.Epochs() != 2 || w.SizeBytes() <= 0 {
		t.Fatalf("bookkeeping: epochs=%d size=%d", w.Epochs(), w.SizeBytes())
	}
}

func TestWindowedTrackerValidation(t *testing.T) {
	if _, err := NewWindowedTracker(0); err == nil {
		t.Fatal("epochs=0 accepted")
	}
	if _, err := NewWindowedTracker(2, WithBuckets(1)); err == nil {
		t.Fatal("invalid sketch options accepted")
	}
}

func TestMonitorCUSUMTripwire(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		SketchOptions: []Option{WithSeed(33)},
		CUSUM:         &CUSUMConfig{IntervalPackets: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Balanced traffic: completing handshakes with FIN teardown.
	now := uint64(0)
	for i := uint32(0); i < 1000; i++ {
		now += 10
		client := 0x0a000000 + i%300
		m.ProcessPacket(Packet{Time: now, Src: client, Dst: 9, SrcPort: uint16(i), DstPort: 80, SYN: true})
		m.ProcessPacket(Packet{Time: now + 1, Src: client, Dst: 9, SrcPort: uint16(i), DstPort: 80, ACK: true})
		m.ProcessPacket(Packet{Time: now + 2, Src: client, Dst: 9, SrcPort: uint16(i), DstPort: 80, FIN: true})
	}
	if m.CUSUMAlarm() {
		t.Fatal("balanced traffic tripped the CUSUM")
	}
	// Flood: SYNs with no teardown.
	for i := uint32(0); i < 2000; i++ {
		now += 10
		m.ProcessPacket(Packet{Time: now, Src: 0xc0000000 + i, Dst: 443, SrcPort: 7, DstPort: 443, SYN: true})
	}
	if !m.CUSUMAlarm() {
		t.Fatal("flood did not trip the CUSUM")
	}
}

func TestMonitorCUSUMDisabledByDefault(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{SketchOptions: []Option{WithSeed(34)}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 5000; i++ {
		m.ProcessPacket(Packet{Time: uint64(i), Src: i, Dst: 1, SrcPort: 1, DstPort: 2, SYN: true})
	}
	if m.CUSUMAlarm() {
		t.Fatal("CUSUMAlarm must be false when not configured")
	}
}

func TestMonitorCUSUMValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{
		CUSUM: &CUSUMConfig{IntervalPackets: -5},
	}); err == nil {
		t.Fatal("negative CUSUM interval accepted")
	}
	if _, err := NewMonitor(MonitorConfig{
		CUSUM: &CUSUMConfig{Alpha: 3},
	}); err == nil {
		t.Fatal("invalid CUSUM alpha accepted")
	}
}
