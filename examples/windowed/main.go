// Windowed tracking: rank destinations by their *recent* half-open
// population instead of all history, using sketch linearity (retiring an
// epoch is a counter subtraction). A long-running monitor inevitably
// accumulates stale state — flows whose completions were lost, or that
// pre-date the monitor; the tumbling window ages them out so yesterday's
// incident does not mask today's.
package main

import (
	"fmt"
	"log"

	"dcsketch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	oldVictim, err := dcsketch.ParseIPv4("203.0.113.7")
	if err != nil {
		return err
	}
	newVictim, err := dcsketch.ParseIPv4("203.0.113.99")
	if err != nil {
		return err
	}

	// A 3-epoch window: with one rotation per minute, the ranking always
	// reflects the last ~3 minutes.
	w, err := dcsketch.NewWindowedTracker(3, dcsketch.WithSeed(7))
	if err != nil {
		return err
	}

	show := func(when string) {
		fmt.Printf("--- %s\n", when)
		for rank, e := range w.TopK(3) {
			fmt.Printf("  %d. %-15s ~%d distinct half-open sources\n",
				rank+1, dcsketch.FormatIPv4(e.Dest), e.Count)
		}
	}

	// Epoch 1: an attack on the old victim whose completions are never
	// observed (e.g. asymmetric routing ate the ACK path).
	for i := uint32(0); i < 900; i++ {
		w.Insert(0xc0000000+i, oldVictim)
	}
	show("epoch 1: attack on 203.0.113.7")

	// Epochs pass; the old attack is mitigated upstream but its state is
	// stuck in any whole-stream tracker. Meanwhile a new attack starts.
	for epoch := 0; epoch < 3; epoch++ {
		if err := w.Rotate(); err != nil {
			return err
		}
		for i := uint32(0); i < 300; i++ {
			w.Insert(0xd0000000+uint32(epoch)<<12+i, newVictim)
		}
	}
	show("3 rotations later: attack on 203.0.113.99")

	top := w.TopK(1)
	if len(top) == 1 && top[0].Dest == newVictim {
		fmt.Println("\n=> the stale incident aged out of the window;")
		fmt.Println("   a whole-stream tracker would still rank the old victim first.")
	}
	return nil
}
