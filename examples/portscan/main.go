// Port-scan / worm detection with the superspreader tracker (paper §1,
// footnote 1): the same distinct-count machinery, applied to sources. A
// scanning worm probes hundreds of distinct destinations; normal hosts talk
// to a handful. No fan-out threshold needs to be chosen in advance — the
// tracker reports the top-k sources by distinct destinations contacted.
package main

import (
	"fmt"
	"log"

	"dcsketch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ss, err := dcsketch.NewSuperspreader(dcsketch.WithSeed(5), dcsketch.WithBuckets(512))
	if err != nil {
		return err
	}

	worm, err := dcsketch.ParseIPv4("10.66.6.6")
	if err != nil {
		return err
	}
	proxy, err := dcsketch.ParseIPv4("10.1.1.1")
	if err != nil {
		return err
	}

	// 200 normal hosts each contact ~4 services and complete.
	for h := uint32(0); h < 200; h++ {
		host := 0x0a000100 + h
		for d := uint32(0); d < 4; d++ {
			dst := 0xc0a80000 + (h+d)%64
			ss.Insert(host, dst)
		}
	}

	// A web proxy legitimately contacts 300 distinct destinations — but
	// its connections complete, so deletions remove them.
	for d := uint32(0); d < 300; d++ {
		ss.Insert(proxy, 0x08080000+d)
	}
	for d := uint32(0); d < 300; d++ {
		ss.Delete(proxy, 0x08080000+d)
	}

	// The worm sweeps a /24, leaving half-open probes everywhere.
	for d := uint32(0); d < 256; d++ {
		ss.Insert(worm, 0xac100000+d)
	}

	fmt.Println("top sources by distinct half-open destinations:")
	for rank, e := range ss.TopK(3) {
		fmt.Printf("  %d. %-15s ~%d destinations\n",
			rank+1, dcsketch.FormatIPv4(e.Src), e.Count)
	}

	fmt.Println("\nsources over a 50-destination fan-out:")
	for _, e := range ss.Threshold(50) {
		fmt.Printf("  %-15s ~%d destinations\n", dcsketch.FormatIPv4(e.Src), e.Count)
	}
	fmt.Println("\n(the proxy contacted 300 destinations but completed them all," +
		"\n so only the worm crosses the threshold)")
	return nil
}
