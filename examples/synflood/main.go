// SYN-flood detection from raw packets: drive the end-to-end DDoS monitor
// with TCP packet observations. Legitimate clients perform full three-way
// handshakes; a botnet floods the victim with spoofed SYNs that are never
// acknowledged. The monitor's TCP state machine converts packets into flow
// updates, the tracking sketch follows the half-open populations, and an
// alert fires for the victim while the busy-but-legitimate server stays
// quiet.
package main

import (
	"fmt"
	"log"

	"dcsketch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	victim, err := dcsketch.ParseIPv4("203.0.113.7")
	if err != nil {
		return err
	}
	busyServer, err := dcsketch.ParseIPv4("198.51.100.1")
	if err != nil {
		return err
	}

	mon, err := dcsketch.NewMonitor(dcsketch.MonitorConfig{
		SketchOptions: []dcsketch.Option{dcsketch.WithSeed(7)},
		CheckInterval: 1000,
		MinFrequency:  200,
		OnAlert: func(a dcsketch.Alert) {
			fmt.Printf("!! ALERT at update %d: %s has ~%d distinct half-open sources (baseline %.1f)\n",
				a.AtUpdate, dcsketch.FormatIPv4(a.Dest), a.Estimated, a.Baseline)
		},
	})
	if err != nil {
		return err
	}

	now := uint64(0)
	// Interleave legitimate handshakes with the flood, the way a link
	// actually carries them.
	for i := uint32(0); i < 4000; i++ {
		now += 50

		// A legitimate client completes a handshake with the server.
		client := 0x0a000000 + i%1500
		mon.ProcessPacket(dcsketch.Packet{
			Time: now, Src: client, Dst: busyServer,
			SrcPort: 10000 + uint16(i), DstPort: 443, SYN: true,
		})
		mon.ProcessPacket(dcsketch.Packet{
			Time: now + 1, Src: busyServer, Dst: client,
			SrcPort: 443, DstPort: 10000 + uint16(i), SYN: true, ACK: true,
		})
		mon.ProcessPacket(dcsketch.Packet{
			Time: now + 2, Src: client, Dst: busyServer,
			SrcPort: 10000 + uint16(i), DstPort: 443, ACK: true,
		})

		// Meanwhile a zombie sends one spoofed SYN. No ACK ever comes.
		mon.ProcessPacket(dcsketch.Packet{
			Time: now + 3, Src: 0xc6000000 + i, Dst: victim,
			SrcPort: 4444, DstPort: 80, SYN: true,
		})
	}

	fmt.Println("\nfinal state:")
	for rank, e := range mon.TopK(3) {
		status := "ok"
		if mon.Alerting(e.Dest) {
			status = "ALERTING"
		}
		fmt.Printf("  %d. %-15s ~%d distinct half-open sources [%s]\n",
			rank+1, dcsketch.FormatIPv4(e.Dest), e.Count, status)
	}
	fmt.Printf("\nthe busy server handled %d connections but is alerting: %v\n",
		4000, mon.Alerting(busyServer))
	fmt.Printf("alerts raised: %d\n", len(mon.Alerts()))
	return nil
}
