// Distributed monitoring across an ISP: one tracking sketch per edge router,
// merged at a central collector (Fig. 1 of the paper). A distributed attack
// spreads its zombies across ingress points so that no single edge sees
// enough of it to stand out — but the sketch is a linear summary, so the
// merged sketch is exactly the sketch of the union stream and the full
// attack is visible network-wide. Edge 0's sketch travels through its wire
// encoding, as it would over the management network.
package main

import (
	"fmt"
	"log"

	"dcsketch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	victim, err := dcsketch.ParseIPv4("203.0.113.7")
	if err != nil {
		return err
	}

	// Four edge sketches share options (and, crucially, the seed).
	opts := []dcsketch.Option{dcsketch.WithSeed(2026)}
	const edges = 4
	edge := make([]*dcsketch.Tracker, edges)
	for i := range edge {
		t, err := dcsketch.NewTracker(opts...)
		if err != nil {
			return err
		}
		edge[i] = t
	}

	// 2000 zombies, round-robined across ingress points: each edge sees
	// only 500 — below a per-edge radar tuned for thousands.
	const zombies = 2000
	for i := uint32(0); i < zombies; i++ {
		edge[i%edges].Insert(0xc6000000+i, victim)
	}
	// Each edge also carries its own legitimate, completing traffic.
	for e, t := range edge {
		for i := uint32(0); i < 800; i++ {
			client := uint32(e)<<20 | 0x0a000000 | i
			server := 0xc0a80000 + uint32(e)
			t.Insert(client, server)
			t.Delete(client, server)
		}
	}

	fmt.Println("per-edge view (each sees only a slice of the attack):")
	for e, t := range edge {
		if top := t.TopK(1); len(top) > 0 {
			fmt.Printf("  edge %d: top dest %-15s ~%d distinct sources\n",
				e, dcsketch.FormatIPv4(top[0].Dest), top[0].Count)
		}
	}

	// Edge 0 ships its sketch over the wire; the collector decodes it and
	// merges the remaining edges in.
	wire, err := edge[0].MarshalBinary()
	if err != nil {
		return err
	}
	collector, err := dcsketch.UnmarshalTracker(wire)
	if err != nil {
		return err
	}
	for _, t := range edge[1:] {
		if err := collector.Merge(t); err != nil { //lint:seedok collector is decoded from edge[0]'s bytes and all edges share one cfg
			return err
		}
	}

	fmt.Printf("\ncollector view (edge 0 arrived as %d wire bytes, then merged 3 more):\n", len(wire))
	for rank, e := range collector.TopK(3) {
		fmt.Printf("  %d. %-15s ~%d distinct sources\n",
			rank+1, dcsketch.FormatIPv4(e.Dest), e.Count)
	}
	fmt.Printf("\nthe collector sees the full ~%d-zombie attack that no edge saw alone\n", zombies)
	return nil
}
