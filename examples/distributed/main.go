// Distributed monitoring across an ISP: one tracking sketch per edge router,
// merged at a central collector (Fig. 1 of the paper). A distributed attack
// spreads its zombies across ingress points so that no single edge sees
// enough of it to stand out — but the sketch is a linear summary, so the
// merged sketch is exactly the sketch of the union stream and the full
// attack is visible network-wide. Edge 0's sketch travels through its wire
// encoding, as it would over the management network.
//
// The second act streams the same attack over a deliberately broken network:
// an in-process monitor daemon behind a faultnet injector that keeps cutting
// the exporter's connection mid-frame. The fault-tolerant exporter
// (internal/export) reconnects, replays, and the daemon's dedup table
// applies every batch exactly once — the collector's count matches the
// reliable run despite the carnage.
package main

import (
	"fmt"
	"log"
	"time"

	"dcsketch"
	"dcsketch/internal/export"
	"dcsketch/internal/faultnet"
	"dcsketch/internal/server"
	"dcsketch/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	if err := runResilient(); err != nil {
		log.Fatal(err)
	}
}

// runResilient drives the edge->collector path over a failing transport.
func runResilient() error {
	srv, err := server.New(server.Config{})
	if err != nil {
		return err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Shutdown()

	// The injector resets the exporter's connection roughly every 2KB of
	// traffic, three times, on a fixed seed: rerunning the example replays
	// the exact same outage schedule.
	inj := faultnet.New(faultnet.Config{Seed: 7, CutAfter: 2048, MaxCuts: 3})
	exp, err := export.New(export.Config{
		Addr:        addr.String(),
		Dial:        inj.Dial,
		BaseBackoff: 5 * time.Millisecond,
		SessionID:   1,
		Seed:        1,
	})
	if err != nil {
		return err
	}
	defer exp.Close()

	victim, err := dcsketch.ParseIPv4("203.0.113.7")
	if err != nil {
		return err
	}
	const zombies = 2000
	batch := make([]wire.Update, 0, 100)
	for i := uint32(0); i < zombies; i++ {
		batch = append(batch, wire.Update{Src: 0xc6000000 + i, Dst: victim, Delta: 1})
		if len(batch) == cap(batch) {
			if err := exp.Export(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := exp.Drain(30 * time.Second); err != nil {
		return err
	}

	est, ss := exp.Stats(), srv.Stats()
	fmt.Printf("\nresilient export over a failing link (%d injected resets):\n", inj.Stats().Cuts)
	fmt.Printf("  exporter: %d/%d batches acked, %d reconnects, %d retransmits, %d dropped\n",
		est.BatchesAcked, est.BatchesEnqueued, est.Reconnects, est.Retransmits, est.BatchesDropped)
	fmt.Printf("  daemon:   %d batches applied, %d duplicate retransmissions suppressed\n",
		ss.Batches, ss.DuplicateBatches)
	for _, e := range srv.TopK(1) {
		fmt.Printf("  top dest %-15s ~%d distinct sources — exactly-once despite the cuts\n",
			dcsketch.FormatIPv4(e.Dest), e.F)
	}
	return nil
}

func run() error {
	victim, err := dcsketch.ParseIPv4("203.0.113.7")
	if err != nil {
		return err
	}

	// Four edge sketches share options (and, crucially, the seed).
	opts := []dcsketch.Option{dcsketch.WithSeed(2026)}
	const edges = 4
	edge := make([]*dcsketch.Tracker, edges)
	for i := range edge {
		t, err := dcsketch.NewTracker(opts...)
		if err != nil {
			return err
		}
		edge[i] = t
	}

	// 2000 zombies, round-robined across ingress points: each edge sees
	// only 500 — below a per-edge radar tuned for thousands.
	const zombies = 2000
	for i := uint32(0); i < zombies; i++ {
		edge[i%edges].Insert(0xc6000000+i, victim)
	}
	// Each edge also carries its own legitimate, completing traffic.
	for e, t := range edge {
		for i := uint32(0); i < 800; i++ {
			client := uint32(e)<<20 | 0x0a000000 | i
			server := 0xc0a80000 + uint32(e)
			t.Insert(client, server)
			t.Delete(client, server)
		}
	}

	fmt.Println("per-edge view (each sees only a slice of the attack):")
	for e, t := range edge {
		if top := t.TopK(1); len(top) > 0 {
			fmt.Printf("  edge %d: top dest %-15s ~%d distinct sources\n",
				e, dcsketch.FormatIPv4(top[0].Dest), top[0].Count)
		}
	}

	// Edge 0 ships its sketch over the wire; the collector decodes it and
	// merges the remaining edges in.
	wire, err := edge[0].MarshalBinary()
	if err != nil {
		return err
	}
	collector, err := dcsketch.UnmarshalTracker(wire)
	if err != nil {
		return err
	}
	for _, t := range edge[1:] {
		if err := collector.Merge(t); err != nil { //lint:seedok collector is decoded from edge[0]'s bytes and all edges share one cfg
			return err
		}
	}

	fmt.Printf("\ncollector view (edge 0 arrived as %d wire bytes, then merged 3 more):\n", len(wire))
	for rank, e := range collector.TopK(3) {
		fmt.Printf("  %d. %-15s ~%d distinct sources\n",
			rank+1, dcsketch.FormatIPv4(e.Dest), e.Count)
	}
	fmt.Printf("\nthe collector sees the full ~%d-zombie attack that no edge saw alone\n", zombies)
	return nil
}
