// Flash-crowd discrimination: the paper's headline robustness claim. Two
// destinations receive surges from thousands of distinct sources at the same
// time — one is a flash crowd (a news site after a breaking story: every
// client completes its handshake), the other is a SYN-flood victim (spoofed
// sources never complete). A volume detector cannot tell them apart; the
// Distinct-Count Sketch, because it processes the completion *deletions*,
// can.
package main

import (
	"fmt"
	"log"

	"dcsketch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	newsSite, err := dcsketch.ParseIPv4("198.51.100.1")
	if err != nil {
		return err
	}
	victim, err := dcsketch.ParseIPv4("203.0.113.7")
	if err != nil {
		return err
	}

	sk, err := dcsketch.NewTracker(dcsketch.WithSeed(99))
	if err != nil {
		return err
	}
	// packetsSeen mimics what a volume-based detector counts: every
	// packet towards the destination, completions included.
	packetsSeen := map[uint32]int{}

	const surge = 5000
	show := func(phase string) {
		fmt.Printf("--- %s\n", phase)
		fmt.Printf("  volume view:   news site %6d pkts | victim %6d pkts\n",
			packetsSeen[newsSite], packetsSeen[victim])
		for _, e := range sk.TopK(2) {
			fmt.Printf("  distinct view: %-15s ~%d half-open sources\n",
				dcsketch.FormatIPv4(e.Dest), e.Count)
		}
	}

	// Phase 1: both surges arrive. SYNs only, so at this instant the two
	// destinations look identical on every metric.
	for i := uint32(0); i < surge; i++ {
		sk.Insert(0x0a000000+i, newsSite)
		packetsSeen[newsSite]++
		sk.Insert(0xc6000000+i, victim)
		packetsSeen[victim]++
	}
	show("both surges arriving (indistinguishable)")

	// Phase 2: the crowd's handshakes complete; the flood's never do.
	// Note the ACKs give the news site MORE packet volume, not less.
	for i := uint32(0); i < surge; i++ {
		sk.Delete(0x0a000000+i, newsSite)
		packetsSeen[newsSite]++
	}
	show("crowd completed, flood persists")

	top := sk.TopK(1)
	if len(top) == 1 && top[0].Dest == victim {
		fmt.Println("\n=> distinct-count metric isolates the true victim;")
		fmt.Println("   the volume metric still ranks the news site first.")
	}
	return nil
}
