// Quickstart: build a tracking Distinct-Count Sketch, feed it flow updates
// with inserts and deletes, and read the top-k destinations by distinct
// half-open sources.
package main

import (
	"fmt"
	"log"

	"dcsketch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A tracking sketch supports continuous top-k queries in O(k log k).
	sk, err := dcsketch.NewTracker(dcsketch.WithSeed(42))
	if err != nil {
		return err
	}

	victim, err := dcsketch.ParseIPv4("203.0.113.7")
	if err != nil {
		return err
	}
	webServer, err := dcsketch.ParseIPv4("198.51.100.1")
	if err != nil {
		return err
	}

	// Updates are submitted in batches — the fast path when they arrive in
	// groups (decoded packet bursts, replayed traces). A batch is applied
	// in order, so an Insert (+1) and its matching Delete (-1) may share
	// one batch. Scalar sk.Insert/sk.Delete remain available for
	// packet-at-a-time ingestion.
	batch := make([]dcsketch.FlowUpdate, 0, 1024)

	// 500 legitimate clients connect to the web server... and complete
	// their handshakes, so each +1 is matched by a -1.
	for i := uint32(0); i < 500; i++ {
		client := 0x0a000000 + i
		batch = append(batch,
			dcsketch.FlowUpdate{Src: client, Dst: webServer, Delta: 1},  // SYN: half-open created
			dcsketch.FlowUpdate{Src: client, Dst: webServer, Delta: -1}, // ACK: legitimized
		)
	}

	// 300 spoofed zombies flood the victim and never complete.
	for i := uint32(0); i < 300; i++ {
		batch = append(batch, dcsketch.FlowUpdate{Src: 0xc0000000 + i, Dst: victim, Delta: 1})
	}
	sk.UpdateBatch(batch)

	fmt.Println("top destinations by distinct half-open sources:")
	for rank, e := range sk.TopK(5) {
		fmt.Printf("  %d. %-15s ~%d distinct sources\n",
			rank+1, dcsketch.FormatIPv4(e.Dest), e.Count)
	}
	fmt.Printf("\nsketch size: %d KiB for a stream of %d updates\n",
		sk.SizeBytes()/1024, sk.Updates())
	fmt.Printf("estimated live distinct pairs: %d\n", sk.DistinctPairs())
	return nil
}
