package dcsketch

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dcsketch/internal/cusum"
	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/stream"
	"dcsketch/internal/superspreader"
	"dcsketch/internal/tcpflow"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/trace"
)

// Alert reports a destination whose half-open distinct-source population is
// anomalously high relative to its learned baseline profile.
type Alert struct {
	// Dest is the suspected victim (IPv4, host byte order).
	Dest uint32
	// Estimated is the estimated distinct-source frequency at detection.
	Estimated int64
	// Baseline is the destination's learned profile at detection.
	Baseline float64
	// AtUpdate is the stream position (update count) of the detection.
	AtUpdate uint64
}

// MonitorConfig parametrizes a Monitor. The zero value selects sensible
// defaults (tracking sketch with the paper's r=3, s=128; top-10 checks every
// 8192 updates; alert at 5x baseline with an absolute floor of 64 distinct
// sources).
type MonitorConfig struct {
	// SketchOptions configure the underlying tracking sketch.
	SketchOptions []Option
	// K is how many top destinations each periodic check inspects.
	K int
	// CheckInterval is the number of updates between tracking checks.
	CheckInterval int
	// BaselineAlpha is the EWMA smoothing factor of baseline profiles.
	BaselineAlpha float64
	// ThresholdFactor triggers an alert at ThresholdFactor x baseline.
	ThresholdFactor float64
	// MinFrequency is the absolute alert floor.
	MinFrequency int64
	// MaxAlerts bounds the retained-alert ring (default 1024): once full,
	// the oldest retained alert is evicted per new alert. AlertStats
	// reports how many were dropped.
	MaxAlerts int
	// OnAlert, if non-nil, is invoked synchronously for each alert.
	OnAlert func(Alert)
	// HalfOpenTimeout bounds, in packet-timestamp units (microseconds),
	// how long ProcessPacket retains half-open connection state before
	// evicting it (the attack signal in the sketch is preserved).
	// Zero selects 30 seconds; negative disables eviction.
	HalfOpenTimeout int64
	// MaxHalfOpenStates bounds ProcessPacket's connection-state table.
	MaxHalfOpenStates int
	// CUSUM optionally arms a Wang-et-al. SYN/FIN change-point tripwire
	// on the packet path (ProcessPacket), complementary to the sketch:
	// it fires on aggregate SYN-FIN imbalance without identifying a
	// victim. Read it with CUSUMAlarm.
	CUSUM *CUSUMConfig
}

// CUSUMConfig parametrizes the optional aggregate SYN-flood tripwire.
// Zero-valued fields take the listed defaults.
type CUSUMConfig struct {
	// Drift is the CUSUM drift term (default 0.35, Wang et al.'s
	// operating point).
	Drift float64
	// Threshold is the alarm level (default 2).
	Threshold float64
	// Alpha is the FIN-baseline EWMA factor (default 0.2).
	Alpha float64
	// IntervalPackets is the observation interval length in packets
	// (default 1024; Wang et al. use wall-clock intervals, which a
	// trace-driven monitor approximates by packet count).
	IntervalPackets int
}

// Monitor is the end-to-end DDoS MONITOR of the paper's architecture
// (Fig. 1): it ingests flow updates — or raw TCP packet observations via
// ProcessPacket — maintains a Tracking Distinct-Count Sketch, compares the
// tracked top-k against EWMA baseline profiles, and raises alerts.
type Monitor struct {
	inner *monitor.Monitor
	conv  *tcpflow.Converter
	sink  stream.Sink

	synfin         *cusum.SYNFIN
	cusumInterval  int
	packetsInSlice int
	cusumWasAlarm  bool

	// cusumStat and cusumAlarm mirror the SYN/FIN statistic after each
	// interval close as lock-free atomics (Float64bits for the statistic),
	// because the monitor's alert-evidence probe samples them from inside
	// its own critical section — possibly on a different goroutine than
	// the single-caller packet path that owns synfin.
	cusumStat  atomic.Uint64
	cusumAlarm atomic.Bool

	// tel holds the telemetry bundle once RegisterTelemetry attaches one;
	// nil (one atomic load per packet) until then.
	tel atomic.Pointer[telemetry.DetectorMetrics]
}

// NewMonitor builds a monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	var onAlert func(monitor.Alert)
	if cfg.OnAlert != nil {
		cb := cfg.OnAlert
		onAlert = func(a monitor.Alert) { cb(Alert(a)) }
	}
	inner, err := monitor.New(monitor.Config{
		Sketch:          buildConfig(cfg.SketchOptions),
		K:               cfg.K,
		CheckInterval:   cfg.CheckInterval,
		BaselineAlpha:   cfg.BaselineAlpha,
		ThresholdFactor: cfg.ThresholdFactor,
		MinFrequency:    cfg.MinFrequency,
		MaxAlerts:       cfg.MaxAlerts,
	}, onAlert)
	if err != nil {
		return nil, err
	}
	conv := tcpflow.New()
	conv.Timeout = cfg.HalfOpenTimeout
	conv.MaxStates = cfg.MaxHalfOpenStates
	m := &Monitor{inner: inner, conv: conv}
	m.sink = stream.SinkFunc(inner.Update)
	if cfg.CUSUM != nil {
		c := *cfg.CUSUM
		if c.Drift == 0 {
			c.Drift = 0.35
		}
		if c.Threshold == 0 {
			c.Threshold = 2
		}
		if c.Alpha == 0 {
			c.Alpha = 0.2
		}
		if c.IntervalPackets == 0 {
			c.IntervalPackets = 1024
		}
		if c.IntervalPackets < 1 {
			return nil, fmt.Errorf("dcsketch: CUSUM.IntervalPackets = %d, must be >= 1", c.IntervalPackets)
		}
		synfin, err := cusum.NewSYNFIN(c.Drift, c.Threshold, c.Alpha)
		if err != nil {
			return nil, err
		}
		m.synfin = synfin
		m.cusumInterval = c.IntervalPackets
		// Feed the tripwire into the alert-evidence ledger: each alert
		// snapshot then records whether the aggregate SYN/FIN view agreed
		// with the per-victim sketch view at onset.
		inner.SetCUSUMProbe(func() (float64, float64, bool) {
			return math.Float64frombits(m.cusumStat.Load()),
				synfin.Threshold(), m.cusumAlarm.Load()
		})
	}
	return m, nil
}

// Update consumes one flow update directly (+1 half-open created, -1
// legitimized/torn down).
func (m *Monitor) Update(src, dst uint32, delta int64) { m.inner.Update(src, dst, delta) }

// rekeyPool recycles the re-keying buffers of Monitor.UpdateBatch; the
// monitor is safe for concurrent producers, so the scratch cannot live on
// the struct.
var rekeyPool = sync.Pool{
	New: func() any {
		b := make([]dcs.KeyDelta, 0, 256)
		return &b
	},
}

// UpdateBatch consumes a batch of flow updates under one lock acquisition
// through the sketch's batched kernel — the fast path when updates arrive in
// groups. Equivalent to calling Update for each record in order; the
// periodic check fires at most once per batch.
func (m *Monitor) UpdateBatch(batch []FlowUpdate) {
	if len(batch) == 0 {
		return
	}
	bp := rekeyPool.Get().(*[]dcs.KeyDelta)
	rekeyed := appendKeyDeltas((*bp)[:0], batch)
	m.inner.UpdateBatch(rekeyed)
	// Pool the (possibly regrown) backing array at length zero so the next
	// Get starts empty instead of replaying stale key-deltas.
	*bp = rekeyed[:0]
	rekeyPool.Put(bp)
}

// Packet is a raw TCP packet observation for ProcessPacket.
type Packet struct {
	// Time is a logical timestamp in microseconds.
	Time uint64
	// Src and Dst are IPv4 addresses (host byte order).
	Src, Dst uint32
	// SrcPort and DstPort are the transport ports.
	SrcPort, DstPort uint16
	// TCP flags of the packet.
	SYN, ACK, RST, FIN bool
}

func (p Packet) record() trace.Record {
	var f trace.TCPFlags
	if p.SYN {
		f |= trace.FlagSYN
	}
	if p.ACK {
		f |= trace.FlagACK
	}
	if p.RST {
		f |= trace.FlagRST
	}
	if p.FIN {
		f |= trace.FlagFIN
	}
	return trace.Record{
		Time: p.Time, Src: p.Src, Dst: p.Dst,
		SrcPort: p.SrcPort, DstPort: p.DstPort, Flags: f,
	}
}

// ProcessPacket runs the TCP half-open state machine over one packet
// observation and feeds the resulting flow updates (if any) into the
// monitor: a client SYN inserts, the completing ACK or an RST deletes.
// Packets should arrive in non-decreasing Time order.
func (m *Monitor) ProcessPacket(p Packet) {
	tel := m.tel.Load()
	if tel != nil {
		tel.PacketsTotal.Inc()
	}
	m.conv.Process(p.record(), m.sink)
	if m.synfin == nil {
		return
	}
	switch {
	case p.SYN && !p.ACK:
		m.synfin.RecordSYN()
	case p.FIN || p.RST:
		m.synfin.RecordFIN()
	}
	m.packetsInSlice++
	if m.packetsInSlice >= m.cusumInterval {
		m.packetsInSlice = 0
		m.synfin.EndInterval()
		m.cusumStat.Store(math.Float64bits(m.synfin.Statistic()))
		// Count alarm onsets (off->on transitions), not in-alarm intervals.
		alarm := m.synfin.InAlarm()
		m.cusumAlarm.Store(alarm)
		if alarm && !m.cusumWasAlarm && tel != nil {
			tel.CusumAlarmsTotal.Inc()
		}
		m.cusumWasAlarm = alarm
	}
}

// CUSUMAlarm reports whether the optional SYN/FIN change-point tripwire is
// in alarm. Always false when MonitorConfig.CUSUM was nil.
func (m *Monitor) CUSUMAlarm() bool {
	return m.synfin != nil && m.synfin.InAlarm()
}

// TopK returns the monitor's current top-k tracked destinations.
func (m *Monitor) TopK(k int) []Estimate { return convertEstimates(m.inner.TopK(k)) }

// Alerts returns all alerts raised so far.
func (m *Monitor) Alerts() []Alert {
	in := m.inner.Alerts()
	out := make([]Alert, len(in))
	for i, a := range in {
		out[i] = Alert(a)
	}
	return out
}

// Alerting reports whether dest is currently in an alert excursion.
func (m *Monitor) Alerting(dest uint32) bool { return m.inner.Alerting(dest) }

// AlertStats reports the alert bookkeeping counters: every alert ever
// raised, anomalous observations suppressed by hysteresis, alerts evicted
// from the bounded ring, and how many the ring currently retains.
type AlertStats struct {
	Raised     uint64
	Suppressed uint64
	Dropped    uint64
	Retained   int
}

// AlertStats returns the current alert bookkeeping counters.
func (m *Monitor) AlertStats() AlertStats { return AlertStats(m.inner.AlertStats()) }

// Registry aggregates runtime telemetry for export as Prometheus text
// (Registry.Handler, Registry.WritePrometheus) or expvar
// (Registry.PublishExpvar). The alias makes the internal implementation
// usable by importers of this package.
type Registry = telemetry.Registry

// NewTelemetryRegistry builds an empty telemetry registry to pass to
// RegisterTelemetry.
func NewTelemetryRegistry() *Registry { return telemetry.NewRegistry() }

// RegisterTelemetry attaches the packet-path instrument bundle and registers
// every monitor-layer and sketch-layer probe on reg; reg's Prometheus or
// expvar export then covers this monitor. Call at most once per monitor and
// registry pair, before or while the monitor is ingesting.
func (m *Monitor) RegisterTelemetry(reg *Registry) {
	tel := telemetry.NewDetectorMetrics(reg)
	m.inner.RegisterTelemetry(reg)
	m.tel.Store(tel)
}

// Updates returns the number of flow updates consumed.
func (m *Monitor) Updates() uint64 { return m.inner.Updates() }

// HalfOpenStates returns the number of connections the packet state machine
// currently tracks.
func (m *Monitor) HalfOpenStates() int { return m.conv.HalfOpen() }

// Collector merges the sketches of several edge monitors into one
// network-wide view. All merged monitors must share identical sketch
// options (seed included).
type Collector struct {
	inner *monitor.Collector
}

// NewCollector builds a collector over the given sketch options.
func NewCollector(opts ...Option) (*Collector, error) {
	inner, err := monitor.NewCollector(buildConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Collector{inner: inner}, nil
}

// Gather merges the given monitors' sketches, replacing any prior content.
func (c *Collector) Gather(monitors ...*Monitor) error {
	inner := make([]*monitor.Monitor, len(monitors))
	for i, m := range monitors {
		inner[i] = m.inner
	}
	return c.inner.Gather(inner...)
}

// TopK returns the network-wide top-k after Gather.
func (c *Collector) TopK(k int) []Estimate { return convertEstimates(c.inner.TopK(k)) }

// SuperspreaderEstimate is a source with its estimated distinct-destination
// fan-out.
type SuperspreaderEstimate struct {
	Src   uint32
	Count int64
}

// Superspreader tracks the top-k sources by the number of distinct
// destinations they contact — port-scan and worm detection (paper §1,
// footnote 1) — using the same sketch with the pair reversed.
type Superspreader struct {
	inner *superspreader.Tracker
}

// NewSuperspreader builds a superspreader tracker.
func NewSuperspreader(opts ...Option) (*Superspreader, error) {
	inner, err := superspreader.New(buildConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Superspreader{inner: inner}, nil
}

// Update observes one flow update.
func (s *Superspreader) Update(src, dst uint32, delta int64) { s.inner.Update(src, dst, delta) }

// Insert records a probe from src to dst.
func (s *Superspreader) Insert(src, dst uint32) { s.inner.Update(src, dst, 1) }

// Delete removes a probe (e.g. the connection completed legitimately).
func (s *Superspreader) Delete(src, dst uint32) { s.inner.Update(src, dst, -1) }

// TopK returns the k sources contacting the most distinct destinations.
func (s *Superspreader) TopK(k int) []SuperspreaderEstimate {
	in := s.inner.TopK(k)
	out := make([]SuperspreaderEstimate, len(in))
	for i, e := range in {
		out[i] = SuperspreaderEstimate{Src: e.Src, Count: e.F}
	}
	return out
}

// Threshold returns all sources contacting at least tau distinct
// destinations.
func (s *Superspreader) Threshold(tau int64) []SuperspreaderEstimate {
	in := s.inner.Threshold(tau)
	out := make([]SuperspreaderEstimate, len(in))
	for i, e := range in {
		out[i] = SuperspreaderEstimate{Src: e.Src, Count: e.F}
	}
	return out
}

// assert the public sink shapes stay compatible with the stream package.
var (
	_ stream.Sink = (*Monitor)(nil)
	_ stream.Sink = (*Superspreader)(nil)
)
