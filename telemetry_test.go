package dcsketch

import (
	"strings"
	"testing"

	"dcsketch/internal/telemetry"
)

// TestMonitorRegisterTelemetry drives the packet path of a registered
// monitor through balanced traffic and then a SYN flood, and checks the
// detector-, monitor-, and sketch-layer series all report it.
func TestMonitorRegisterTelemetry(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		SketchOptions: []Option{WithSeed(33)},
		CheckInterval: 100,
		MinFrequency:  50,
		MaxAlerts:     8,
		CUSUM:         &CUSUMConfig{IntervalPackets: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTelemetryRegistry()
	m.RegisterTelemetry(reg)

	var packets float64
	now := uint64(0)
	for i := uint32(0); i < 500; i++ {
		now += 10
		client := 0x0a000000 + i%300
		m.ProcessPacket(Packet{Time: now, Src: client, Dst: 9, SrcPort: uint16(i), DstPort: 80, SYN: true})
		m.ProcessPacket(Packet{Time: now + 1, Src: client, Dst: 9, SrcPort: uint16(i), DstPort: 80, ACK: true})
		m.ProcessPacket(Packet{Time: now + 2, Src: client, Dst: 9, SrcPort: uint16(i), DstPort: 80, FIN: true})
		packets += 3
	}
	for i := uint32(0); i < 2000; i++ {
		now += 10
		m.ProcessPacket(Packet{Time: now, Src: 0xc0000000 + i, Dst: 443, SrcPort: 7, DstPort: 443, SYN: true})
		packets++
	}
	if !m.CUSUMAlarm() {
		t.Fatal("flood did not trip the CUSUM")
	}

	vals := map[string]float64{}
	for _, s := range reg.Snapshot() {
		vals[s.Name] = s.Value
	}
	if vals["dcsketch_detector_packets_total"] != packets {
		t.Errorf("packets_total = %v, want %v", vals["dcsketch_detector_packets_total"], packets)
	}
	// One off->on transition, not one count per in-alarm interval.
	if vals["dcsketch_detector_cusum_alarms_total"] != 1 {
		t.Errorf("cusum_alarms_total = %v, want 1", vals["dcsketch_detector_cusum_alarms_total"])
	}
	if vals["dcsketch_monitor_updates_total"] == 0 {
		t.Error("monitor updates_total is zero despite packet-derived flow updates")
	}
	if vals["dcsketch_monitor_alerts_raised_total"] == 0 {
		t.Error("alerts_raised_total is zero despite the flood")
	}
	if vals["dcsketch_sketch_queries_total"] == 0 {
		t.Error("sketch queries_total is zero despite periodic checks")
	}

	st := m.AlertStats()
	if st.Raised == 0 || st.Retained == 0 {
		t.Fatalf("AlertStats = %+v, want alerts raised and retained", st)
	}
	if st.Retained > 8 {
		t.Fatalf("Retained = %d exceeds MaxAlerts 8", st.Retained)
	}
	if uint64(st.Retained)+st.Dropped != st.Raised {
		t.Fatalf("AlertStats inconsistent: %+v", st)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheusText([]byte(sb.String())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}
