package dcsketch

import (
	"math/rand"
	"reflect"
	"testing"
)

// flowStream builds n public flow updates with inserts and matched deletes.
func flowStream(rng *rand.Rand, n int) []FlowUpdate {
	type pair struct{ src, dst uint32 }
	stream := make([]FlowUpdate, 0, n)
	live := make([]pair, 0, n)
	for len(stream) < n {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			stream = append(stream, FlowUpdate{Src: live[i].src, Dst: live[i].dst, Delta: -1})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		p := pair{src: rng.Uint32(), dst: 0x0a000000 + uint32(rng.Intn(50))}
		stream = append(stream, FlowUpdate{Src: p.src, Dst: p.dst, Delta: 1})
		live = append(live, p)
	}
	return stream
}

// TestPublicBatchEquivalence checks every public batch entry point against
// its scalar twin on one stream: Sketch, Tracker, WindowedTracker (with a
// mid-stream rotation) and Monitor must answer identically either way.
func TestPublicBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	stream := flowStream(rng, 6000)
	opts := []Option{WithSeed(9)}

	sk, _ := NewSketch(opts...)
	skBatch, _ := NewSketch(opts...)
	tr, _ := NewTracker(opts...)
	trBatch, _ := NewTracker(opts...)
	wt, _ := NewWindowedTracker(3, opts...)
	wtBatch, _ := NewWindowedTracker(3, opts...)
	mon, err := NewMonitor(MonitorConfig{SketchOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	monBatch, err := NewMonitor(MonitorConfig{SketchOptions: opts})
	if err != nil {
		t.Fatal(err)
	}

	half := len(stream) / 2
	for _, part := range [][]FlowUpdate{stream[:half], stream[half:]} {
		for _, u := range part {
			sk.Update(u.Src, u.Dst, u.Delta)
			tr.Update(u.Src, u.Dst, u.Delta)
			wt.Update(u.Src, u.Dst, u.Delta)
			mon.Update(u.Src, u.Dst, u.Delta)
		}
		skBatch.UpdateBatch(part)
		trBatch.UpdateBatch(part)
		wtBatch.UpdateBatch(part)
		monBatch.UpdateBatch(part)

		// Rotate mid-stream so the window path covers epoch retirement
		// on both sides.
		if err := wt.Rotate(); err != nil {
			t.Fatal(err)
		}
		if err := wtBatch.Rotate(); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := skBatch.TopK(10), sk.TopK(10); !reflect.DeepEqual(got, want) {
		t.Fatalf("Sketch TopK: batch %v != scalar %v", got, want)
	}
	if got, want := trBatch.TopK(10), tr.TopK(10); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tracker TopK: batch %v != scalar %v", got, want)
	}
	if got, want := wtBatch.TopK(10), wt.TopK(10); !reflect.DeepEqual(got, want) {
		t.Fatalf("WindowedTracker TopK: batch %v != scalar %v", got, want)
	}
	if got, want := monBatch.TopK(10), mon.TopK(10); !reflect.DeepEqual(got, want) {
		t.Fatalf("Monitor TopK: batch %v != scalar %v", got, want)
	}
	if got, want := monBatch.Updates(), mon.Updates(); got != want {
		t.Fatalf("Monitor updates: batch %d != scalar %d", got, want)
	}
	if got, want := trBatch.Updates(), tr.Updates(); got != want {
		t.Fatalf("Tracker updates: batch %d != scalar %d", got, want)
	}
}

// TestMonitorBatchAlerts checks that the batched monitor path still fires
// alerts: a flood crossing the check interval inside one batch must be
// detected exactly once.
func TestMonitorBatchAlerts(t *testing.T) {
	var alerts []Alert
	mon, err := NewMonitor(MonitorConfig{
		SketchOptions: []Option{WithSeed(3)},
		CheckInterval: 1024,
		MinFrequency:  64,
		OnAlert:       func(a Alert) { alerts = append(alerts, a) },
	})
	if err != nil {
		t.Fatal(err)
	}

	victim := uint32(0xc0a80001)
	batch := make([]FlowUpdate, 0, 4096)
	for i := uint32(0); i < 4096; i++ {
		batch = append(batch, FlowUpdate{Src: 0x0b000000 + i, Dst: victim, Delta: 1})
	}
	// One batch crosses the interval several times; the check coalesces to
	// one evaluation, which must raise exactly one alert for the victim.
	mon.UpdateBatch(batch)

	if len(alerts) != 1 || alerts[0].Dest != victim {
		t.Fatalf("alerts = %+v, want exactly one for %x", alerts, victim)
	}
	if !mon.Alerting(victim) {
		t.Fatal("victim not in alerting state after batch")
	}
}
